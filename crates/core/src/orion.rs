//! The user-facing Orion facade: compile a kernel, get the candidate
//! versions, the nvcc-like baseline, or a full occupancy sweep, and run
//! versions on the simulated device.

use crate::compiler::{compile, CompiledKernel, KernelVersion, TuningConfig};
use crate::error::OrionError;
use crate::version::VersionBuilder;
use orion_alloc::realize::{kernel_max_live, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions, RunResult};
use orion_kir::function::Module;

/// Orion instance bound to a device and a tuning configuration.
#[derive(Debug, Clone)]
pub struct Orion {
    pub dev: DeviceSpec,
    pub cfg: TuningConfig,
}

impl Orion {
    /// Orion for `dev` with paper-default configuration at `block`
    /// threads per block.
    pub fn new(dev: DeviceSpec, block: u32) -> Self {
        Orion { dev, cfg: TuningConfig::new(block) }
    }

    /// Run the compile-time stage (Figure 8): candidate versions.
    ///
    /// # Errors
    /// Propagates verification/allocation failures.
    pub fn compile(&self, module: &Module) -> Result<CompiledKernel, OrionError> {
        compile(module, &self.dev, &self.cfg)
    }

    /// The nvcc-like baseline: single-thread-optimal register allocation
    /// (max-live registers, capped by hardware), no occupancy awareness;
    /// the driver derives whatever occupancy falls out.
    ///
    /// # Errors
    /// Propagates verification/allocation failures.
    pub fn baseline(&self, module: &Module) -> Result<KernelVersion, OrionError> {
        orion_kir::verify::verify(module)?;
        let max_live = kernel_max_live(module)?;
        let regs = (max_live.min(u32::from(self.dev.max_regs_per_thread)) as u16).max(2);
        VersionBuilder::new(&self.dev, self.cfg.block, module).realize(
            SlotBudget { reg_slots: regs, smem_slots: 0 },
            0,
            "nvcc",
        )
    }

    /// One version per achievable occupancy level (block-granular),
    /// ascending — the exhaustive sweep behind Figures 1/2/10/14/15 and
    /// the Orion-Min/Max bars of Figure 11. Levels above what register
    /// re-allocation can reach are pruned; levels below the binary's
    /// natural occupancy are realized by shared-memory padding.
    ///
    /// # Errors
    /// Fails when no level is achievable at all.
    pub fn sweep(&self, module: &Module) -> Result<Vec<KernelVersion>, OrionError> {
        orion_kir::verify::verify(module)?;
        let vb = VersionBuilder::new(&self.dev, self.cfg.block, module);
        let warps_per_block = self.cfg.block.div_ceil(self.dev.warp_size);
        let mut out: Vec<KernelVersion> = Vec::new();
        let mut w = warps_per_block;
        while w <= self.dev.max_warps_per_sm {
            if let Some(v) = vb.sweep_level(w)? {
                if !out.iter().any(|x| x.achieved_warps == v.achieved_warps) {
                    out.push(v);
                }
            }
            w += warps_per_block;
        }
        if out.is_empty() {
            return Err(OrionError::NoAchievableOccupancy);
        }
        out.sort_by_key(|v| v.achieved_warps);
        Ok(out)
    }

    /// Simulate one launch of a version (wires the version's driver-side
    /// shared-memory padding into the launch).
    ///
    /// # Errors
    /// Propagates simulator failures.
    pub fn run_version(
        &self,
        version: &KernelVersion,
        launch: Launch,
        params: &[u32],
        global: &mut [u8],
    ) -> Result<RunResult, OrionError> {
        Ok(run_launch_opts(
            &self.dev,
            &version.machine,
            launch,
            params,
            global,
            LaunchOptions {
                extra_smem_per_block: version.extra_smem,
                cta_range: None,
                cycle_budget: None,
                ..LaunchOptions::default()
            },
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn kernel(live: usize) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let vals: Vec<_> = (0..live).map(|k| b.fmul(x, Operand::Imm(k as i64))).collect();
        let mut acc = b.mov_f32(0.0);
        for v in vals {
            acc = b.fadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, addr, acc, 0);
        Module::new(b.finish())
    }

    #[test]
    fn sweep_covers_many_levels() {
        let orion = Orion::new(DeviceSpec::c2075(), 192);
        let m = kernel(8);
        let sweep = orion.sweep(&m).unwrap();
        assert!(sweep.len() >= 5, "{}", sweep.len());
        // Ascending occupancy, including the hardware max.
        assert!(sweep.windows(2).all(|w| w[0].achieved_warps < w[1].achieved_warps));
        assert_eq!(sweep.last().unwrap().achieved_warps, 48);
        // Low levels pad, high levels don't.
        assert!(sweep.first().unwrap().extra_smem > 0);
        assert_eq!(sweep.last().unwrap().extra_smem, 0);
    }

    #[test]
    fn baseline_uses_maxlive_registers() {
        let orion = Orion::new(DeviceSpec::gtx680(), 256);
        let m = kernel(40);
        let base = orion.baseline(&m).unwrap();
        assert!(base.machine.regs_per_thread >= 40);
        assert_eq!(base.machine.smem_slots_per_thread, 0);
        assert!(base.occupancy < 1.0);
    }

    #[test]
    fn run_version_executes() {
        let orion = Orion::new(DeviceSpec::gtx680(), 32);
        let m = kernel(4);
        let base = orion.baseline(&m).unwrap();
        let mut g = vec![0u8; 4 * 64];
        let r = orion.run_version(&base, Launch { grid: 2, block: 32 }, &[0], &mut g).unwrap();
        assert!(r.cycles > 0);
    }
}
