//! Compiled-candidate cache: memoize Chaitin-Briggs allocation + layout
//! matching over `(kernel fingerprint, slot budget, allocator options)`.
//!
//! Orion's whole point is that occupancy search is cheap: ≤5 candidate
//! versions per kernel (§3.3), then repeated re-measurement across the
//! application loop (§3.4). The *same* allocation inputs recur
//! constantly in that regime — the Figure 8 candidate set is rebuilt
//! per sweep, Figure 9 walks re-realize versions they already produced,
//! and the resilient runtime's retry/quarantine loops re-plan
//! candidates after faults. All of those funnel through
//! [`allocate_cached`], so a version is realized once per process and
//! then served as a clone of the cached binary.
//!
//! ## Key and sharding
//!
//! The realized binary is a pure function of `(module, SlotBudget,
//! AllocOptions)` — the allocator never consults the device, the
//! occupancy bound, or shared-memory padding; those enter downstream,
//! when the driver computes occupancy for the *already realized*
//! binary and when the launch adds `extra_smem_per_block`. Keying on
//! the allocation inputs therefore both stays correct under any
//! device/padding combination and reuses one binary across all of
//! them. The module half of the key is a structural fingerprint
//! ([`orion_kir::function::Module::fingerprint`]) because workload
//! builders construct a fresh `Module` value per call.
//!
//! The cache is **lock-striped**: entries land on one of
//! [`CacheConfig::shards`] shards selected by mixing the module
//! fingerprint, so concurrent sessions tuning different kernels never
//! contend on one mutex. ([`ShardedService`](crate::sharded::ShardedService)'s
//! hash placement routes by the same fingerprint, so a multi-device
//! batch keeps each kernel's compiles on one device's shard walk.) Each shard keeps its own FIFO order and its
//! own hit/miss/eviction/coalesce counters, surfaced per shard in
//! [`CompileCacheStats::per_shard`] (and from there in
//! `ServiceReport::cache`).
//!
//! ## In-flight coalescing
//!
//! Allocation runs *outside* the shard lock (it is the expensive part),
//! so two threads racing on a cold key would both allocate — and worse,
//! split the hit/miss accounting nondeterministically. Each shard
//! therefore tracks in-flight keys: the first requester registers the
//! key and allocates; concurrent requesters for the same key wait on
//! the shard's condvar and are served the freshly inserted entry as a
//! **hit** (also counted under [`ShardStats::coalesced`]). Hit/miss
//! totals are thus a pure function of the request multiset, whatever
//! the thread interleaving — the observability suite's bit-identical
//! sequential-vs-concurrent gate leans on exactly this. If the
//! allocation fails (or capacity is 0 and nothing is retained), waiters
//! simply retry the protocol themselves.
//!
//! ## Poison recovery
//!
//! A thread that panics while holding a shard lock must not wedge every
//! future compile. All shard locking goes through one poison-tolerant
//! helper: a poisoned shard is *cleared* (entries are pure memoization,
//! so dropping them is always safe — the next request simply
//! recompiles), the event is counted
//! ([`ShardStats::poison_recovered`], the `cache/poison_recovered`
//! gauge, a journal record) and the mutex is un-poisoned. In-flight
//! markers are cleaned up by an unwind-safe drop guard plus a bounded
//! condvar wait, so coalesced waiters can never strand on an
//! allocation whose owner died.
//!
//! ## Invalidation
//!
//! Entries never go stale — the key captures every input of the
//! allocation function — so the only invalidation is capacity-bound
//! FIFO eviction per shard (total capacity set by [`CacheConfig`],
//! default [`CACHE_CAPACITY`], split evenly across shards) plus the
//! explicit [`reset`] used by benches to measure cold-cache behavior.
//! Allocation *errors* are not cached; they are deterministic but cheap
//! (they fail early), and callers treat them as exceptional.
//!
//! Hit/miss/eviction counters are exported programmatically
//! ([`stats`]), as `orion-telemetry` counters under the `compile_cache`
//! category, as registry gauges (`cache/entries`, `cache/hit_rate`),
//! and evictions are journaled
//! ([`orion_telemetry::journal::JournalEvent::CacheEvicted`]).

use orion_alloc::realize::{allocate, AllocError, AllocOptions, Allocated, SlotBudget};
use orion_kir::function::Module;
use orion_telemetry::journal::{self, JournalEvent};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Duration;

/// Upper bound on one coalescing condvar wait. The in-flight guard
/// wakes waiters when an allocation resolves (or unwinds), so this
/// never fires on a healthy cache — it is pure defense so a lost wakeup
/// can never strand a waiter forever.
const COALESCE_WAIT: Duration = Duration::from_millis(50);

/// Default maximum resident entries across all shards; far above any
/// single tuning session in this repo (a sweep realizes ≤ 16 versions
/// per kernel), so eviction only matters to unbounded multi-kernel
/// processes.
pub const CACHE_CAPACITY: usize = 256;

/// Default shard count. Eight shards keep mutex contention negligible
/// for the service's default worker pool while per-shard capacity
/// (256 / 8 = 32) still dwarfs a single kernel's candidate set.
pub const CACHE_SHARDS: usize = 8;

/// Tunable parameters of the process-wide compile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident entries summed across shards; `0` disables
    /// caching entirely (every allocation is a miss and nothing is
    /// retained).
    pub capacity: usize,
    /// Lock stripes. Clamped to at least 1. Use `1` for strict global
    /// FIFO eviction order; with more shards, eviction is FIFO *per
    /// shard* (each shard holding `capacity / shards`, rounded up).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: CACHE_CAPACITY, shards: CACHE_SHARDS }
    }
}

impl CacheConfig {
    fn shard_count(&self) -> usize {
        self.shards.max(1)
    }

    /// Per-shard entry budget: total capacity split evenly, rounded up.
    fn per_shard_capacity(&self) -> usize {
        self.capacity.div_ceil(self.shard_count())
    }
}

type Key = (u64, SlotBudget, AllocOptions);

#[derive(Default)]
struct ShardState {
    map: HashMap<Key, Arc<Allocated>>,
    /// Insertion order, for FIFO eviction at capacity.
    order: VecDeque<Key>,
    /// Keys some thread is currently allocating (coalescing).
    inflight: HashSet<Key>,
    hits: u64,
    misses: u64,
    evictions: u64,
    coalesced: u64,
    /// Times this shard's mutex was found poisoned and recovered.
    poisoned: u64,
}

impl ShardState {
    /// FIFO-evict until at most `room_for` more entries fit in
    /// `capacity`. Returns how many entries were evicted.
    fn evict_to_fit(&mut self, room_for: usize, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() + room_for > capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.map.remove(&oldest);
            self.evictions += 1;
            evicted += 1;
            orion_telemetry::counter("compile_cache", "evictions", 1);
        }
        evicted
    }
}

#[derive(Default)]
struct Shard {
    state: Mutex<ShardState>,
    /// Wakes coalesced waiters when an in-flight allocation resolves.
    resolved: Condvar,
}

/// Lock a shard, recovering from poison instead of propagating it.
///
/// A thread that panics while holding the shard lock leaves the shard's
/// contents in an unknown state (a half-finished insert, an in-flight
/// key whose allocation will never resolve). Recovery therefore
/// *clears* the shard — resident entries, FIFO order, and in-flight
/// markers — which is always safe because entries are pure memoization,
/// then counts the event ([`ShardStats::poison_recovered`], journal
/// [`JournalEvent::PoisonRecovered`]), un-poisons the mutex so every
/// future compile proceeds normally, and wakes any waiters coalesced on
/// a cleared in-flight key so they retry their own allocation.
fn lock_shard<'a>(shard: &'a Shard, idx: usize) -> MutexGuard<'a, ShardState> {
    match shard.state.lock() {
        Ok(st) => st,
        Err(poisoned) => {
            let mut st = poisoned.into_inner();
            st.map.clear();
            st.order.clear();
            st.inflight.clear();
            st.poisoned += 1;
            shard.state.clear_poison();
            orion_telemetry::counter("compile_cache", "poison_recovered", 1);
            journal::record(JournalEvent::PoisonRecovered { shard: idx });
            shard.resolved.notify_all();
            st
        }
    }
}

/// Clears `key`'s in-flight marker and wakes coalesced waiters when
/// dropped — *including* by unwind — so a panicking allocation can
/// never strand the threads waiting on it.
struct InflightGuard<'a> {
    shard: &'a Shard,
    idx: usize,
    key: Key,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_shard(self.shard, self.idx);
        st.inflight.remove(&self.key);
        drop(st);
        self.shard.resolved.notify_all();
    }
}

struct ShardedCache {
    shards: Vec<Shard>,
    cfg: CacheConfig,
}

impl ShardedCache {
    fn new(cfg: CacheConfig) -> Self {
        ShardedCache { shards: (0..cfg.shard_count()).map(|_| Shard::default()).collect(), cfg }
    }

    /// Shard index for a key: multiplicative fingerprint mix, so
    /// structurally similar modules still spread.
    fn shard_index(&self, key: &Key) -> usize {
        let mixed = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((mixed >> 32) as usize) % self.shards.len()
    }
}

static STATE: OnceLock<RwLock<ShardedCache>> = OnceLock::new();

fn state() -> &'static RwLock<ShardedCache> {
    STATE.get_or_init(|| {
        register_gauges();
        RwLock::new(ShardedCache::new(CacheConfig::default()))
    })
}

/// Read the stripe set, tolerating poison. The outer `RwLock` only
/// guards the shard *vector* (shard contents live behind per-shard
/// mutexes with their own recovery), so a reader can safely continue
/// after a writer panicked mid-`configure`: the vector is replaced
/// atomically and is structurally valid at every point.
fn read_state() -> std::sync::RwLockReadGuard<'static, ShardedCache> {
    let lock = state();
    lock.clear_poison();
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Register the cache's live registry gauges (sampled at snapshot time).
fn register_gauges() {
    let scope = orion_telemetry::registry::global().scope("cache");
    scope.register_gauge_fn(
        "entries",
        "Resident compile-cache entries across shards",
        "entries",
        || STATE.get().map_or(0.0, |_| stats().entries as f64),
    );
    scope.register_gauge_fn("hit_rate", "Lifetime compile-cache hit rate", "", || {
        STATE.get().map_or(0.0, |_| stats().hit_rate())
    });
    scope.register_gauge_fn("shards", "Configured compile-cache shard count", "", || {
        STATE.get().map_or(0.0, |_| config().shard_count() as f64)
    });
    scope.register_gauge_fn(
        "poison_recovered",
        "Poisoned compile-cache shard mutexes recovered",
        "events",
        || STATE.get().map_or(0.0, |_| stats().poison_recovered as f64),
    );
}

/// Replace the cache configuration. Changing the shard count rehashes
/// every resident entry into the new stripes (preserving each old
/// shard's FIFO order during the migration); shrinking the capacity
/// evicts (FIFO per shard) down to the new budget. Counters are
/// aggregated into shard 0's tally if the shard count shrinks, so
/// process-lifetime totals are never lost.
pub fn configure(cfg: CacheConfig) {
    let lock = state();
    lock.clear_poison();
    let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
    if cfg.shard_count() == cache.cfg.shard_count() {
        cache.cfg = cfg;
        let capacity = cfg.per_shard_capacity();
        for (i, shard) in cache.shards.iter().enumerate() {
            let mut st = lock_shard(shard, i);
            let evicted = st.evict_to_fit(0, capacity);
            if evicted > 0 {
                journal::record(JournalEvent::CacheEvicted { shard: i, entries: evicted });
            }
        }
        return;
    }
    // Shard count changed: rebuild the stripe set and migrate entries.
    let old = std::mem::replace(&mut *cache, ShardedCache::new(cfg));
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut resident: Vec<(Key, Arc<Allocated>)> = Vec::new();
    for (i, shard) in old.shards.iter().enumerate() {
        let mut st = lock_shard(shard, i);
        totals.0 += st.hits;
        totals.1 += st.misses;
        totals.2 += st.evictions;
        totals.3 += st.coalesced;
        totals.4 += st.poisoned;
        for key in std::mem::take(&mut st.order) {
            if let Some(v) = st.map.remove(&key) {
                resident.push((key, v));
            }
        }
    }
    // Lifetime counters survive reconfiguration, parked on shard 0.
    {
        let mut st = lock_shard(&cache.shards[0], 0);
        (st.hits, st.misses, st.evictions, st.coalesced, st.poisoned) = totals;
    }
    let capacity = cfg.per_shard_capacity();
    if cfg.capacity > 0 {
        for (key, value) in resident {
            let idx = cache.shard_index(&key);
            let mut st = lock_shard(&cache.shards[idx], idx);
            if !st.map.contains_key(&key) {
                let evicted = st.evict_to_fit(1, capacity);
                if evicted > 0 {
                    journal::record(JournalEvent::CacheEvicted { shard: idx, entries: evicted });
                }
                st.order.push_back(key);
                st.map.insert(key, value);
            }
        }
    }
}

/// The currently active cache configuration.
pub fn config() -> CacheConfig {
    read_state().cfg
}

/// Counters of one cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Allocations served from this shard.
    pub hits: u64,
    /// Allocations this shard actually performed.
    pub misses: u64,
    /// Entries dropped by this shard's FIFO eviction.
    pub evictions: u64,
    /// Hits that were coalesced onto another thread's in-flight
    /// allocation (a subset of `hits`).
    pub coalesced: u64,
    /// Times this shard's mutex was found poisoned (a thread panicked
    /// while holding it) and recovered by clearing the shard. Counts
    /// resilience events, so [`reset`] preserves it.
    pub poison_recovered: u64,
    /// Entries currently resident in this shard.
    pub entries: usize,
}

impl ShardStats {
    /// Total lookups against this shard.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction (0.0 when the shard was never touched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Counter snapshot of the process-wide compile cache: aggregate
/// totals plus the per-shard breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompileCacheStats {
    /// Allocations served from the cache.
    pub hits: u64,
    /// Allocations actually performed (Chaitin-Briggs + layout).
    pub misses: u64,
    /// Entries dropped by capacity-bound FIFO eviction.
    pub evictions: u64,
    /// Hits coalesced onto a concurrent in-flight allocation.
    pub coalesced: u64,
    /// Poisoned shard mutexes recovered (cleared and un-poisoned).
    pub poison_recovered: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Per-shard counters, indexed by shard.
    pub per_shard: Vec<ShardStats>,
}

impl CompileCacheStats {
    /// Aggregate hit fraction (0.0 when untouched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// The activity between `before` and `self` (both from [`stats`]):
    /// counters are subtracted, `entries` keeps the *after* value (it is
    /// a level, not a flow). Per-shard deltas require an unchanged shard
    /// count; otherwise the after-snapshot's shards are returned as-is.
    #[must_use]
    pub fn delta_since(&self, before: &CompileCacheStats) -> CompileCacheStats {
        let per_shard = if self.per_shard.len() == before.per_shard.len() {
            self.per_shard
                .iter()
                .zip(&before.per_shard)
                .map(|(a, b)| ShardStats {
                    hits: a.hits.saturating_sub(b.hits),
                    misses: a.misses.saturating_sub(b.misses),
                    evictions: a.evictions.saturating_sub(b.evictions),
                    coalesced: a.coalesced.saturating_sub(b.coalesced),
                    poison_recovered: a.poison_recovered.saturating_sub(b.poison_recovered),
                    entries: a.entries,
                })
                .collect()
        } else {
            self.per_shard.clone()
        };
        CompileCacheStats {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            evictions: self.evictions.saturating_sub(before.evictions),
            coalesced: self.coalesced.saturating_sub(before.coalesced),
            poison_recovered: self.poison_recovered.saturating_sub(before.poison_recovered),
            entries: self.entries,
            per_shard,
        }
    }
}

/// [`orion_alloc::realize::allocate`] memoized over
/// `(module fingerprint, budget, options)`, lock-striped with in-flight
/// coalescing (see the module docs).
///
/// # Errors
/// Propagates allocation failures (which are never cached).
pub fn allocate_cached(
    module: &Module,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<Allocated, AllocError> {
    let key = (module.fingerprint(), budget, *opts);
    let cache = read_state();
    let idx = cache.shard_index(&key);
    let shard = &cache.shards[idx];
    let retain = cache.cfg.capacity > 0;
    let mut st = lock_shard(shard, idx);
    let mut waited = false;
    loop {
        if let Some(hit) = st.map.get(&key).cloned() {
            st.hits += 1;
            if waited {
                st.coalesced += 1;
            }
            drop(st);
            orion_telemetry::counter("compile_cache", "hit", 1);
            return Ok((*hit).clone());
        }
        if !retain || !st.inflight.contains(&key) {
            break;
        }
        waited = true;
        // Bounded wait: the in-flight guard signals on resolve *and*
        // on unwind; the timeout just re-checks in case a recovery
        // cleared the in-flight key between our test and the wait.
        st = match shard.resolved.wait_timeout(st, COALESCE_WAIT) {
            Ok((st, _timed_out)) => st,
            Err(poisoned) => {
                drop(poisoned); // releases the poisoned guard...
                lock_shard(shard, idx) // ...and recovers the shard
            }
        };
    }
    st.misses += 1;
    // Armed before the allocation runs: if `allocate` (or this thread,
    // between here and return) unwinds, the guard still clears the
    // in-flight marker and wakes waiters, so nobody coalesces forever
    // on a corpse.
    let _inflight = retain.then(|| {
        st.inflight.insert(key);
        InflightGuard { shard, idx, key }
    });
    drop(st);
    orion_telemetry::counter("compile_cache", "miss", 1);
    let out = allocate(module, budget, opts);
    if retain {
        let mut st = lock_shard(shard, idx);
        if let Ok(v) = &out {
            if !st.map.contains_key(&key) {
                let capacity = cache.cfg.per_shard_capacity();
                let evicted = st.evict_to_fit(1, capacity);
                if evicted > 0 {
                    journal::record(JournalEvent::CacheEvicted { shard: idx, entries: evicted });
                }
                st.order.push_back(key);
                st.map.insert(key, Arc::new(v.clone()));
            }
        }
        // `_inflight` drops on return: marker cleared, waiters woken —
        // after the entry above is visible, so they resolve as hits.
    }
    out
}

/// Snapshot the hit/miss/eviction/coalesce counters and resident entry
/// counts, aggregate and per shard.
pub fn stats() -> CompileCacheStats {
    let cache = read_state();
    let mut total = CompileCacheStats::default();
    for (i, shard) in cache.shards.iter().enumerate() {
        let st = lock_shard(shard, i);
        let s = ShardStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            coalesced: st.coalesced,
            poison_recovered: st.poisoned,
            entries: st.map.len(),
        };
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
        total.coalesced += s.coalesced;
        total.poison_recovered += s.poison_recovered;
        total.entries += s.entries;
        total.per_shard.push(s);
    }
    total
}

/// Drop every entry and zero the performance counters (cold-cache
/// measurements). The configured capacity and shard count are kept, as
/// is the poison-recovery count — that one tallies resilience events,
/// not cache effectiveness, and reports assert on its lifetime value.
pub fn reset() {
    let cache = read_state();
    for (i, shard) in cache.shards.iter().enumerate() {
        let mut st = lock_shard(shard, i);
        st.map.clear();
        st.order.clear();
        st.hits = 0;
        st.misses = 0;
        st.evictions = 0;
        st.coalesced = 0;
    }
}

/// Deliberately poison shard 0's mutex: spawn a thread that takes the
/// lock and panics. Chaos/test helper proving poison recovery end to
/// end — the *next* cache operation on that shard clears it, increments
/// [`ShardStats::poison_recovered`], and proceeds normally. The
/// panicking thread prints through the process panic hook; callers that
/// want silence install a quiet hook first.
pub fn poison_for_chaos() {
    let poisoner = std::thread::spawn(|| {
        let cache = read_state();
        let _guard = cache.shards[0].state.lock().unwrap_or_else(PoisonError::into_inner);
        panic!("chaos: poisoning the compile cache on purpose");
    });
    // The join error *is* the panic we induced; swallowing it keeps the
    // poison (set when the guard dropped during unwind) as the only
    // side effect.
    let _ = poisoner.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn module() -> Module {
        let mut b = FunctionBuilder::kernel("cached");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        // Hold several values live at once so a tight register budget
        // (see `distinct_budgets_are_distinct_entries`) must spill.
        let vals: Vec<_> = (1..=6).map(|k| b.iadd(x, Operand::Imm(k))).collect();
        let mut acc = b.iadd(vals[0], vals[1]);
        for v in &vals[2..] {
            acc = b.iadd(acc, *v);
        }
        b.st(MemSpace::Global, Width::W32, a, acc, 0);
        Module::new(b.finish())
    }

    // Note: the cache and its counters are process-global and the test
    // harness runs tests concurrently, so assertions below compare
    // against a snapshot with `>=`, not exact totals.
    #[test]
    fn hit_returns_identical_binary_and_counts() {
        let m = module();
        let budget = SlotBudget { reg_slots: 12, smem_slots: 0 };
        let before = stats();
        let cold = allocate_cached(&m, budget, &AllocOptions::default()).expect("alloc");
        let warm = allocate_cached(&m, budget, &AllocOptions::default()).expect("alloc");
        assert_eq!(cold.machine, warm.machine);
        // A structurally equal but separately built module still hits.
        let again = allocate_cached(&module(), budget, &AllocOptions::default()).expect("alloc");
        assert_eq!(again.machine, cold.machine);
        let after = stats();
        assert!(after.hits >= before.hits + 2, "{after:?} vs {before:?}");
    }

    #[test]
    fn distinct_budgets_are_distinct_entries() {
        let m = module();
        let a = allocate_cached(
            &m,
            SlotBudget { reg_slots: 12, smem_slots: 0 },
            &AllocOptions::default(),
        )
        .expect("alloc");
        let b = allocate_cached(
            &m,
            SlotBudget { reg_slots: 2, smem_slots: 0 },
            &AllocOptions::default(),
        )
        .expect("alloc");
        assert_ne!(a.machine, b.machine);
        assert!(stats().entries >= 2);
    }

    #[test]
    fn per_shard_stats_aggregate_to_totals() {
        let _ = allocate_cached(
            &module(),
            SlotBudget { reg_slots: 12, smem_slots: 0 },
            &AllocOptions::default(),
        );
        let st = stats();
        assert_eq!(st.per_shard.len(), config().shard_count());
        assert_eq!(st.hits, st.per_shard.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(st.misses, st.per_shard.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(st.entries, st.per_shard.iter().map(|s| s.entries).sum::<usize>());
        for s in &st.per_shard {
            assert!(s.coalesced <= s.hits, "{s:?}");
            assert!((0.0..=1.0).contains(&s.hit_rate()));
        }
    }

    #[test]
    fn delta_since_subtracts_counters_and_keeps_levels() {
        let before = CompileCacheStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            coalesced: 2,
            poison_recovered: 0,
            entries: 3,
            per_shard: vec![ShardStats {
                hits: 10,
                misses: 4,
                evictions: 1,
                coalesced: 2,
                poison_recovered: 0,
                entries: 3,
            }],
        };
        let after = CompileCacheStats {
            hits: 25,
            misses: 9,
            evictions: 1,
            coalesced: 5,
            poison_recovered: 1,
            entries: 7,
            per_shard: vec![ShardStats {
                hits: 25,
                misses: 9,
                evictions: 1,
                coalesced: 5,
                poison_recovered: 1,
                entries: 7,
            }],
        };
        let d = after.delta_since(&before);
        assert_eq!((d.hits, d.misses, d.evictions, d.coalesced), (15, 5, 0, 3));
        assert_eq!(d.poison_recovered, 1);
        assert_eq!(d.entries, 7);
        assert_eq!(d.per_shard[0].hits, 15);
        assert_eq!(d.per_shard[0].entries, 7);
    }

    // Exact-count coalescing behavior is asserted in the own-process
    // `cache_config` integration binary, where no concurrent test can
    // perturb the process-global counters.
}
