//! Compiled-candidate cache: memoize Chaitin-Briggs allocation + layout
//! matching over `(kernel fingerprint, slot budget, allocator options)`.
//!
//! Orion's whole point is that occupancy search is cheap: ≤5 candidate
//! versions per kernel (§3.3), then repeated re-measurement across the
//! application loop (§3.4). The *same* allocation inputs recur
//! constantly in that regime — the Figure 8 candidate set is rebuilt
//! per sweep, Figure 9 walks re-realize versions they already produced,
//! and the resilient runtime's retry/quarantine loops re-plan
//! candidates after faults. All of those funnel through
//! [`allocate_cached`], so a version is realized once per process and
//! then served as a clone of the cached binary.
//!
//! ## Key
//!
//! The realized binary is a pure function of `(module, SlotBudget,
//! AllocOptions)` — the allocator never consults the device, the
//! occupancy bound, or shared-memory padding; those enter downstream,
//! when the driver computes occupancy for the *already realized*
//! binary and when the launch adds `extra_smem_per_block`. Keying on
//! the allocation inputs therefore both stays correct under any
//! device/padding combination and reuses one binary across all of
//! them. The module half of the key is a structural fingerprint
//! ([`orion_kir::function::Module::fingerprint`]) because workload
//! builders construct a fresh `Module` value per call.
//!
//! ## Invalidation
//!
//! Entries never go stale — the key captures every input of the
//! allocation function — so the only invalidation is capacity-bound
//! FIFO eviction (capacity set by [`CacheConfig`], default
//! [`CACHE_CAPACITY`]) plus the explicit [`reset`] used by benches to
//! measure cold-cache behavior. Allocation *errors* are not cached;
//! they are deterministic but cheap (they fail early), and callers
//! treat them as exceptional.
//!
//! Hit/miss/eviction counters are exported both programmatically
//! ([`stats`]) and as `orion-telemetry` counters under the
//! `compile_cache` category.

use orion_alloc::realize::{allocate, AllocError, AllocOptions, Allocated, SlotBudget};
use orion_kir::function::Module;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default maximum resident entries; far above any single tuning
/// session in this repo (a sweep realizes ≤ 16 versions per kernel), so
/// eviction only matters to unbounded multi-kernel processes.
pub const CACHE_CAPACITY: usize = 256;

/// Tunable parameters of the process-wide compile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident entries; `0` disables caching entirely (every
    /// allocation is a miss and nothing is retained).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: CACHE_CAPACITY }
    }
}

type Key = (u64, SlotBudget, AllocOptions);

struct CacheState {
    map: HashMap<Key, Arc<Allocated>>,
    /// Insertion order, for FIFO eviction at capacity.
    order: VecDeque<Key>,
    cfg: CacheConfig,
}

impl CacheState {
    /// FIFO-evict until at most `room_for` more entries fit.
    fn evict_to_fit(&mut self, room_for: usize) {
        while self.map.len() + room_for > self.cfg.capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.map.remove(&oldest);
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            orion_telemetry::counter("compile_cache", "evictions", 1);
        }
    }
}

static STATE: OnceLock<Mutex<CacheState>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<CacheState> {
    STATE.get_or_init(|| {
        Mutex::new(CacheState {
            map: HashMap::new(),
            order: VecDeque::new(),
            cfg: CacheConfig::default(),
        })
    })
}

/// Replace the cache configuration, evicting (FIFO) down to the new
/// capacity if it shrank. Counters are unaffected.
pub fn configure(cfg: CacheConfig) {
    let mut st = state().lock().expect("compile cache poisoned");
    st.cfg = cfg;
    st.evict_to_fit(0);
}

/// The currently active cache configuration.
pub fn config() -> CacheConfig {
    state().lock().expect("compile cache poisoned").cfg
}

/// Counter snapshot of the process-wide compile cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileCacheStats {
    /// Allocations served from the cache.
    pub hits: u64,
    /// Allocations actually performed (Chaitin-Briggs + layout).
    pub misses: u64,
    /// Entries dropped by capacity-bound FIFO eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// [`orion_alloc::realize::allocate`] memoized over
/// `(module fingerprint, budget, options)`.
///
/// # Errors
/// Propagates allocation failures (which are never cached).
pub fn allocate_cached(
    module: &Module,
    budget: SlotBudget,
    opts: &AllocOptions,
) -> Result<Allocated, AllocError> {
    let key = (module.fingerprint(), budget, *opts);
    let cached = state().lock().expect("compile cache poisoned").map.get(&key).cloned();
    if let Some(hit) = cached {
        HITS.fetch_add(1, Ordering::Relaxed);
        orion_telemetry::counter("compile_cache", "hit", 1);
        return Ok((*hit).clone());
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    orion_telemetry::counter("compile_cache", "miss", 1);
    let out = allocate(module, budget, opts)?;
    let mut st = state().lock().expect("compile cache poisoned");
    if st.cfg.capacity > 0 && !st.map.contains_key(&key) {
        st.evict_to_fit(1);
        st.order.push_back(key);
        st.map.insert(key, Arc::new(out.clone()));
    }
    Ok(out)
}

/// Snapshot the hit/miss/eviction counters and resident entry count.
pub fn stats() -> CompileCacheStats {
    CompileCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        entries: state().lock().expect("compile cache poisoned").map.len(),
    }
}

/// Drop every entry and zero the counters (cold-cache measurements).
/// The configured capacity is kept.
pub fn reset() {
    let mut st = state().lock().expect("compile cache poisoned");
    st.map.clear();
    st.order.clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn module() -> Module {
        let mut b = FunctionBuilder::kernel("cached");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        // Hold several values live at once so a tight register budget
        // (see `distinct_budgets_are_distinct_entries`) must spill.
        let vals: Vec<_> = (1..=6).map(|k| b.iadd(x, Operand::Imm(k))).collect();
        let mut acc = b.iadd(vals[0], vals[1]);
        for v in &vals[2..] {
            acc = b.iadd(acc, *v);
        }
        b.st(MemSpace::Global, Width::W32, a, acc, 0);
        Module::new(b.finish())
    }

    // Note: the cache and its counters are process-global and the test
    // harness runs tests concurrently, so assertions below compare
    // against a snapshot with `>=`, not exact totals.
    #[test]
    fn hit_returns_identical_binary_and_counts() {
        let m = module();
        let budget = SlotBudget { reg_slots: 12, smem_slots: 0 };
        let before = stats();
        let cold = allocate_cached(&m, budget, &AllocOptions::default()).expect("alloc");
        let warm = allocate_cached(&m, budget, &AllocOptions::default()).expect("alloc");
        assert_eq!(cold.machine, warm.machine);
        // A structurally equal but separately built module still hits.
        let again = allocate_cached(&module(), budget, &AllocOptions::default()).expect("alloc");
        assert_eq!(again.machine, cold.machine);
        let after = stats();
        assert!(after.hits >= before.hits + 2, "{after:?} vs {before:?}");
    }

    #[test]
    fn distinct_budgets_are_distinct_entries() {
        let m = module();
        let a = allocate_cached(
            &m,
            SlotBudget { reg_slots: 12, smem_slots: 0 },
            &AllocOptions::default(),
        )
        .expect("alloc");
        let b = allocate_cached(
            &m,
            SlotBudget { reg_slots: 2, smem_slots: 0 },
            &AllocOptions::default(),
        )
        .expect("alloc");
        assert_ne!(a.machine, b.machine);
        assert!(stats().entries >= 2);
    }
}
