//! Unified error type for the Orion framework.
//!
//! Besides wrapping the per-layer errors (verifier, allocator,
//! simulator), [`OrionError`] supports *source-chain context*: the
//! resilient runtime wraps a failure with the kernel name and the
//! simulated cycle at which it struck ([`OrionError::with_context`]),
//! and [`std::error::Error::source`] walks back to the root cause, so
//! `anyhow`-style chain printers show e.g.
//! `kernel "srad" failed at cycle 123456: sim: watchdog: ...`.

use orion_alloc::realize::AllocError;
use orion_gpusim::exec::SimError;
use orion_kir::verify::VerifyError;
use std::fmt;

/// Any failure in the compile/tune/run pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OrionError {
    /// The input module failed verification.
    Verify(VerifyError),
    /// Allocation/codegen failed.
    Alloc(AllocError),
    /// Simulation failed.
    Sim(SimError),
    /// No occupancy level was achievable for the kernel on the device.
    NoAchievableOccupancy,
    /// The runtime tuner was driven outside its contract (zero work
    /// normalization, measurement for an unknown version, ...).
    Tuner(String),
    /// Every candidate version — including the fail-safe — failed to
    /// launch; there is nothing left to run.
    AllCandidatesFailed { quarantined: usize },
    /// A version label that names no version of the compiled kernel
    /// (see [`crate::compiler::CompiledKernel::index_of`]).
    UnknownVersion { label: String },
    /// Admission control rejected the job: the submission queue was full
    /// and the job lost the priority-ordered shed.
    Overloaded { capacity: usize, submitted: usize },
    /// The worker driving this kernel's session panicked; the panic was
    /// caught at the job boundary and the kernel quarantined.
    SessionPanicked { detail: String },
    /// A failure annotated with where it struck. The inner error is
    /// reachable through [`std::error::Error::source`].
    Context(Box<ErrorContext>),
}

/// Where a wrapped [`OrionError`] struck.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorContext {
    /// Kernel (entry function) name.
    pub kernel: String,
    /// Simulated cycle of the failure, when the runtime knows it (total
    /// cycles executed before the failing launch).
    pub cycle: Option<u64>,
    /// The underlying failure.
    pub source: OrionError,
}

impl OrionError {
    /// Wrap this error with the kernel name and failure cycle. Chains
    /// compose: an already-contextualized error gains an outer frame.
    #[must_use]
    pub fn with_context(self, kernel: impl Into<String>, cycle: Option<u64>) -> Self {
        OrionError::Context(Box::new(ErrorContext { kernel: kernel.into(), cycle, source: self }))
    }

    /// The innermost error in the context chain (the root cause).
    pub fn root_cause(&self) -> &OrionError {
        match self {
            OrionError::Context(c) => c.source.root_cause(),
            other => other,
        }
    }

    /// Whether the root cause is a transient (retryable) failure.
    pub fn is_transient(&self) -> bool {
        matches!(self.root_cause(), OrionError::Sim(e) if e.is_transient())
    }
}

impl fmt::Display for OrionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrionError::Verify(e) => write!(f, "verify: {e}"),
            OrionError::Alloc(e) => write!(f, "alloc: {e}"),
            OrionError::Sim(e) => write!(f, "sim: {e}"),
            OrionError::NoAchievableOccupancy => {
                write!(f, "no occupancy level is achievable for this kernel")
            }
            OrionError::Tuner(detail) => write!(f, "tuner: {detail}"),
            OrionError::AllCandidatesFailed { quarantined } => {
                write!(f, "all candidate versions failed to launch ({quarantined} quarantined)")
            }
            OrionError::UnknownVersion { label } => {
                write!(f, "no kernel version is labeled \"{label}\"")
            }
            OrionError::Overloaded { capacity, submitted } => {
                write!(
                    f,
                    "service overloaded: {submitted} jobs submitted against an \
                     admission queue of capacity {capacity}"
                )
            }
            OrionError::SessionPanicked { detail } => {
                write!(f, "session worker panicked: {detail}")
            }
            OrionError::Context(c) => match c.cycle {
                Some(cycle) => {
                    write!(f, "kernel \"{}\" failed at cycle {cycle}: {}", c.kernel, c.source)
                }
                None => write!(f, "kernel \"{}\": {}", c.kernel, c.source),
            },
        }
    }
}

impl std::error::Error for OrionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrionError::Verify(e) => Some(e),
            OrionError::Alloc(e) => Some(e),
            OrionError::Sim(e) => Some(e),
            OrionError::Context(c) => Some(&c.source),
            _ => None,
        }
    }
}

impl From<VerifyError> for OrionError {
    fn from(e: VerifyError) -> Self {
        OrionError::Verify(e)
    }
}

impl From<AllocError> for OrionError {
    fn from(e: AllocError) -> Self {
        OrionError::Alloc(e)
    }
}

impl From<SimError> for OrionError {
    fn from(e: SimError) -> Self {
        OrionError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_variants() {
        let e = OrionError::NoAchievableOccupancy;
        assert!(e.to_string().contains("occupancy"));
        let e: OrionError = SimError::Deadlock.into();
        assert!(matches!(e, OrionError::Sim(_)));
    }

    #[test]
    fn context_chains_and_sources() {
        let root: OrionError = SimError::Watchdog { budget: 1000 }.into();
        let wrapped = root.clone().with_context("srad", Some(4242));
        let msg = wrapped.to_string();
        assert!(msg.contains("srad") && msg.contains("4242") && msg.contains("watchdog"), "{msg}");
        // source() walks to the inner OrionError, then to the SimError.
        let inner = wrapped.source().expect("context has a source");
        assert_eq!(inner.to_string(), root.to_string());
        let sim = inner.source().expect("sim error is the root's source");
        assert!(sim.to_string().contains("watchdog"));
        assert_eq!(wrapped.root_cause(), &root);
    }

    #[test]
    fn transience_is_seen_through_context() {
        let e: OrionError = SimError::TransientLaunchFailure { code: 1 }.into();
        assert!(e.clone().with_context("k", None).is_transient());
        let e: OrionError = SimError::Deadlock.into();
        assert!(!e.with_context("k", None).is_transient());
    }
}
