//! Unified error type for the Orion framework.

use orion_alloc::realize::AllocError;
use orion_gpusim::exec::SimError;
use orion_kir::verify::VerifyError;
use std::fmt;

/// Any failure in the compile/tune/run pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum OrionError {
    /// The input module failed verification.
    Verify(VerifyError),
    /// Allocation/codegen failed.
    Alloc(AllocError),
    /// Simulation failed.
    Sim(SimError),
    /// No occupancy level was achievable for the kernel on the device.
    NoAchievableOccupancy,
}

impl fmt::Display for OrionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrionError::Verify(e) => write!(f, "verify: {e}"),
            OrionError::Alloc(e) => write!(f, "alloc: {e}"),
            OrionError::Sim(e) => write!(f, "sim: {e}"),
            OrionError::NoAchievableOccupancy => {
                write!(f, "no occupancy level is achievable for this kernel")
            }
        }
    }
}

impl std::error::Error for OrionError {}

impl From<VerifyError> for OrionError {
    fn from(e: VerifyError) -> Self {
        OrionError::Verify(e)
    }
}

impl From<AllocError> for OrionError {
    fn from(e: AllocError) -> Self {
        OrionError::Alloc(e)
    }
}

impl From<SimError> for OrionError {
    fn from(e: SimError) -> Self {
        OrionError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OrionError::NoAchievableOccupancy;
        assert!(e.to_string().contains("occupancy"));
        let e: OrionError = SimError::Deadlock.into();
        assert!(matches!(e, OrionError::Sim(_)));
    }
}
