//! Kernel splitting (§3.4, after \[30\]): when the application has no
//! iteration loop but launches many blocks, Orion splits one invocation
//! into several smaller ones so the runtime tuner gets iterations to
//! measure. The split slices the grid; `%nctaid` keeps reporting the
//! full grid so per-thread work assignments are unchanged.

use orion_gpusim::sim::LaunchOptions;

/// Slice a grid of `grid` blocks into up to `pieces` contiguous ranges,
/// each at least `min_blocks` blocks (fewer pieces if the grid is small).
pub fn split_ranges(grid: u32, pieces: u32, min_blocks: u32) -> Vec<(u32, u32)> {
    if grid == 0 {
        return Vec::new();
    }
    let pieces = pieces
        .min(grid / min_blocks.max(1))
        .max(1);
    let base = grid / pieces;
    let rem = grid % pieces;
    let mut out = Vec::with_capacity(pieces as usize);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + u32::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Launch options for one split piece.
pub fn piece_options(range: (u32, u32), extra_smem: u32) -> LaunchOptions {
    LaunchOptions {
        extra_smem_per_block: extra_smem,
        cta_range: Some(range),
        cycle_budget: None,
        ..LaunchOptions::default()
    }
}

/// Does the launch have enough blocks to split into `pieces` that still
/// fill the device? (Each piece should keep every SM busy with at least
/// one block.)
pub fn can_split(grid: u32, num_sms: u32, pieces: u32) -> bool {
    grid >= num_sms * pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_grid_exactly() {
        for grid in [1u32, 7, 64, 100, 257] {
            for pieces in [1u32, 2, 3, 5] {
                let rs = split_ranges(grid, pieces, 1);
                let total: u32 = rs.iter().map(|&(_, c)| c).sum();
                assert_eq!(total, grid, "grid {grid} pieces {pieces}");
                // Contiguous and ordered.
                let mut expect = 0;
                for &(s, c) in &rs {
                    assert_eq!(s, expect);
                    assert!(c > 0);
                    expect = s + c;
                }
            }
        }
    }

    #[test]
    fn min_blocks_limits_pieces() {
        let rs = split_ranges(20, 8, 10);
        assert_eq!(rs.len(), 2);
        let rs = split_ranges(9, 8, 10);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn can_split_needs_enough_blocks() {
        assert!(can_split(64, 8, 4));
        assert!(!can_split(16, 8, 4));
    }
}
