//! Kernel splitting (§3.4, after \[30\]): when the application has no
//! iteration loop but launches many blocks, Orion splits one invocation
//! into several smaller ones so the runtime tuner gets iterations to
//! measure. The split slices the grid; `%nctaid` keeps reporting the
//! full grid so per-thread work assignments are unchanged.

use crate::backend::Backend;
use crate::compiler::CompiledKernel;
use crate::error::OrionError;
use crate::session::{SessionOutcome, SessionStep, TuningSession};
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::LaunchOptions;

/// Slice a grid of `grid` blocks into up to `pieces` contiguous ranges,
/// each at least `min_blocks` blocks (fewer pieces if the grid is small).
pub fn split_ranges(grid: u32, pieces: u32, min_blocks: u32) -> Vec<(u32, u32)> {
    if grid == 0 {
        return Vec::new();
    }
    let pieces = pieces.min(grid / min_blocks.max(1)).max(1);
    let base = grid / pieces;
    let rem = grid % pieces;
    let mut out = Vec::with_capacity(pieces as usize);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + u32::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Launch options for one split piece.
pub fn piece_options(range: (u32, u32), extra_smem: u32) -> LaunchOptions {
    LaunchOptions {
        extra_smem_per_block: extra_smem,
        cta_range: Some(range),
        cycle_budget: None,
        ..LaunchOptions::default()
    }
}

/// Does the launch have enough blocks to split into `pieces` that still
/// fill the device? (Each piece should keep every SM busy with at least
/// one block.)
pub fn can_split(grid: u32, num_sms: u32, pieces: u32) -> bool {
    grid >= num_sms * pieces
}

/// How to slice a loop-less launch for [`tune_by_splitting`].
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Target number of grid slices (fewer if the grid is small).
    pub pieces: u32,
    /// Smallest slice worth measuring, in blocks.
    pub min_blocks: u32,
    /// Walk convergence threshold (the paper's 2% rule is `0.02`).
    pub threshold: f64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig { pieces: 8, min_blocks: 1, threshold: 0.02 }
    }
}

/// Tune a loop-less kernel by splitting one invocation into grid
/// slices: each slice becomes one "iteration" of a
/// [`TuningSession`], and because slices can differ by one block when
/// the grid doesn't divide evenly, every measurement is
/// work-normalized by its slice's block count (§4.2). The slices
/// together cover the grid exactly once, and every candidate computes
/// identical memory, so the tuned invocation leaves `global` exactly
/// as the untuned one would.
///
/// Callers should gate on [`can_split`]; an unsplittable grid
/// degenerates to a single full-grid slice (one measurement, static
/// pick).
///
/// # Errors
/// Propagates launch failures from the backend; the fault-free walk
/// itself cannot fail.
pub fn tune_by_splitting<B: Backend>(
    backend: &B,
    ck: &CompiledKernel,
    launch: Launch,
    params: &[u32],
    global: &mut [u8],
    cfg: SplitConfig,
) -> Result<SessionOutcome, OrionError> {
    let ranges = split_ranges(launch.grid, cfg.pieces, cfg.min_blocks);
    let mut session =
        TuningSession::simple(ck, u32::try_from(ranges.len()).unwrap_or(u32::MAX), cfg.threshold);
    let mut next_range = ranges.into_iter();
    while let SessionStep::Launch(v) = session.next_step()? {
        let range = next_range.next().expect("one slice per session iteration");
        let version = &ck.versions[v];
        let cycles = backend.launch(
            version,
            launch,
            params,
            global,
            piece_options(range, version.extra_smem),
        )?;
        session.on_cycles_with_work(cycles, u64::from(range.1))?;
    }
    Ok(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_grid_exactly() {
        for grid in [1u32, 7, 64, 100, 257] {
            for pieces in [1u32, 2, 3, 5] {
                let rs = split_ranges(grid, pieces, 1);
                let total: u32 = rs.iter().map(|&(_, c)| c).sum();
                assert_eq!(total, grid, "grid {grid} pieces {pieces}");
                // Contiguous and ordered.
                let mut expect = 0;
                for &(s, c) in &rs {
                    assert_eq!(s, expect);
                    assert!(c > 0);
                    expect = s + c;
                }
            }
        }
    }

    #[test]
    fn min_blocks_limits_pieces() {
        let rs = split_ranges(20, 8, 10);
        assert_eq!(rs.len(), 2);
        let rs = split_ranges(9, 8, 10);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn can_split_needs_enough_blocks() {
        assert!(can_split(64, 8, 4));
        assert!(!can_split(16, 8, 4));
    }

    #[test]
    fn split_tuning_walks_candidates_and_preserves_memory() {
        use crate::backend::SimBackend;
        use crate::compiler::TuningConfig;
        use orion_gpusim::device::DeviceSpec;
        use orion_kir::builder::FunctionBuilder;
        use orion_kir::function::Module;
        use orion_kir::inst::Operand;
        use orion_kir::types::{MemSpace, SpecialReg, Width};

        let mut b = FunctionBuilder::kernel("split");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imad(x, gid, gid);
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        let module = Module::new(b.finish());

        let grid = 24u32;
        let block = 32u32;
        let be = SimBackend::new(DeviceSpec::gtx680());
        let ck = be.compile_probe(&module, &TuningConfig::new(block)).unwrap();
        let launch = Launch { grid, block };
        let bytes = (grid * block * 4) as usize;

        // Unsplit reference: one full-grid launch of the original.
        let mut want = vec![0u8; bytes];
        be.launch(
            &ck.versions[ck.original],
            launch,
            &[0],
            &mut want,
            piece_options((0, grid), ck.versions[ck.original].extra_smem),
        )
        .unwrap();

        let mut got = vec![0u8; bytes];
        let out =
            tune_by_splitting(&be, &ck, launch, &[0], &mut got, SplitConfig::default()).unwrap();
        assert_eq!(out.iterations.len(), 8, "one measurement per slice");
        assert!(out.selected < ck.versions.len());
        assert!(!out.decisions.is_empty());
        // Every candidate is value-accurate, so the sliced, mixed-version
        // invocation computes exactly what the unsplit launch does.
        assert_eq!(got, want, "split tuning changed the computation");
    }
}
