//! `ShardedService` — one serving plane across several devices.
//!
//! A deployment with more than one simulated device (or several
//! independent backend instances over one device class) wants a single
//! submission surface: hand the batch to one object, let it place each
//! job on a device, run every device's event loop concurrently, and
//! merge the per-device reports back into submission order. That merge
//! must be *deterministic*: the sharded run of a partition is
//! bit-identical to running each partition on a single-device
//! [`OrionService`] by itself — sharding is a placement decision, never
//! a semantic one.
//!
//! ## Placement
//!
//! Both policies are pure functions of the job set, so the placement
//! vector (and therefore every downstream outcome) is reproducible:
//!
//! * [`Placement::Hash`] — `Module::fingerprint() % devices`. Jobs for
//!   the same kernel IR always land on the same device, which maximises
//!   compile-cache locality (the cache shards by fingerprint too).
//! * [`Placement::LeastLoaded`] — greedy: walk jobs in submission
//!   order, place each on the device with the smallest accumulated
//!   load proxy (`grid × block × iterations`), ties on the lowest
//!   device index. Balances heterogeneous batches that hash-placement
//!   would skew.
//!
//! ## Merge invariants
//!
//! * [`ShardedReport::kernels`] is in global submission order; each
//!   report is exactly the one its device's event loop produced.
//!   Telemetry lanes are **shard-local** (each device numbers its own
//!   jobs `1..`); use [`ShardedReport::placements`] to attribute them.
//! * Admission control ([`ServiceConfig::queue_capacity`]) applies
//!   per device, after placement — capacity is a device property.
//! * [`ShardedReport::cache`] is the batch-wide compile-cache delta,
//!   taken around the whole sharded run (per-device deltas under
//!   concurrency can attribute a neighbour's hits to the wrong shard;
//!   the per-device [`ServiceReport::cache`] values are best-effort).

use crate::backend::AsyncBackend;
use crate::cache;
use crate::service::{KernelJob, KernelReport, OrionService, ServiceConfig, ServiceReport};
use orion_telemetry::registry;

/// How jobs are assigned to devices. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// `Module::fingerprint() % devices`: same kernel, same device.
    #[default]
    Hash,
    /// Greedy least-accumulated-load (`grid × block × iterations`
    /// proxy), ties to the lowest device index.
    LeastLoaded,
}

impl Placement {
    /// Stable lowercase name (reports, bench artifacts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Placement::Hash => "hash",
            Placement::LeastLoaded => "least_loaded",
        }
    }
}

/// A completed sharded batch. `kernels` is the deterministic
/// submission-order merge; `shards` keeps each device's full report
/// (shard-local order) for per-device inspection.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-kernel reports, merged back into global submission order.
    pub kernels: Vec<KernelReport>,
    /// Device index each submitted job was placed on (submission
    /// order).
    pub placements: Vec<usize>,
    /// Each device's own [`ServiceReport`], in device order.
    pub shards: Vec<ServiceReport>,
    /// Batch-wide compile-cache delta (see the module docs).
    pub cache: cache::CompileCacheStats,
}

impl ShardedReport {
    /// Whether every kernel on every device tuned successfully.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.kernels.iter().all(|k| k.outcome.is_ok())
    }
}

/// The multi-device serving plane: one [`OrionService`] (and so one
/// backend, one event loop) per device, plus a placement policy.
#[derive(Debug)]
pub struct ShardedService<B: AsyncBackend> {
    shards: Vec<OrionService<B>>,
    placement: Placement,
}

impl<B: AsyncBackend> ShardedService<B> {
    /// A sharded service over one backend per device, each driven with
    /// the same configuration.
    ///
    /// # Panics
    /// With zero backends — a serving plane needs at least one device.
    pub fn new(backends: Vec<B>, cfg: ServiceConfig, placement: Placement) -> Self {
        assert!(!backends.is_empty(), "ShardedService needs at least one device");
        ShardedService {
            shards: backends.into_iter().map(|b| OrionService::new(b, cfg)).collect(),
            placement,
        }
    }

    /// Number of devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// The device each job would be placed on — a pure function of the
    /// job set (exposed so callers and tests can reproduce partitions).
    #[must_use]
    pub fn place(&self, jobs: &[KernelJob]) -> Vec<usize> {
        let n = self.shards.len();
        match self.placement {
            Placement::Hash => jobs
                .iter()
                .map(|j| usize::try_from(j.module.fingerprint() % n as u64).unwrap_or(0))
                .collect(),
            Placement::LeastLoaded => {
                let mut load = vec![0u128; n];
                jobs.iter()
                    .map(|j| {
                        let cost = u128::from(j.launch.grid)
                            * u128::from(j.launch.block)
                            * u128::from(j.iterations.max(1));
                        let d = (0..n).min_by_key(|&d| (load[d], d)).unwrap_or(0);
                        load[d] += cost;
                        d
                    })
                    .collect()
            }
        }
    }

    /// Place every job, run each device's event loop concurrently, and
    /// merge the reports back into submission order.
    pub fn run(&self, jobs: Vec<KernelJob>) -> ShardedReport {
        let placements = self.place(&jobs);
        let cache_before = cache::stats();
        let reg = registry::global().scope("service");
        // Partition, remembering each job's global submission index so
        // the merge can restore order deterministically.
        let mut parts: Vec<Vec<KernelJob>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut indices: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, (job, &d)) in jobs.into_iter().zip(&placements).enumerate() {
            parts[d].push(job);
            indices[d].push(i);
        }
        for (d, idx) in indices.iter().enumerate() {
            reg.scope(&format!("device{d}"))
                .register_gauge("jobs", "Jobs placed on this device in the last batch", "")
                .set(idx.len() as f64);
        }
        let total = placements.len();
        // One scheduler thread per device; each runs its own event
        // loop over its own backend.
        let mut shard_reports: Vec<Option<ServiceReport>> =
            (0..self.shards.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (slot, (svc, part)) in shard_reports.iter_mut().zip(self.shards.iter().zip(parts)) {
                scope.spawn(move || *slot = Some(svc.run(part)));
            }
        });
        let shards: Vec<ServiceReport> =
            shard_reports.into_iter().map(|r| r.expect("every device thread reports")).collect();
        // Deterministic merge: device reports come back in shard-local
        // submission order; scatter them to their recorded global
        // indices.
        let mut merged: Vec<Option<KernelReport>> = (0..total).map(|_| None).collect();
        for (d, report) in shards.iter().enumerate() {
            for (local, k) in report.kernels.iter().enumerate() {
                merged[indices[d][local]] = Some(k.clone());
            }
        }
        let kernels = merged
            .into_iter()
            .map(|k| k.expect("every placed job has exactly one report"))
            .collect();
        ShardedReport {
            kernels,
            placements,
            shards,
            cache: cache::stats().delta_since(&cache_before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::compiler::TuningConfig;
    use crate::service::JobPolicy;
    use orion_gpusim::device::DeviceSpec;
    use orion_gpusim::exec::Launch;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::function::Module;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module(mul: i64) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, Operand::Imm(mul));
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    fn job(name: &str, mul: i64, iterations: u32) -> KernelJob {
        KernelJob {
            name: name.into(),
            module: toy_module(mul),
            launch: Launch { grid: 4, block: 32 },
            params: vec![0],
            global: vec![0u8; 4 * 128],
            iterations,
            tuning: TuningConfig::new(32),
            policy: JobPolicy::default(),
        }
    }

    fn sharded(devices: usize, placement: Placement) -> ShardedService<SimBackend> {
        ShardedService::new(
            (0..devices).map(|_| SimBackend::new(DeviceSpec::gtx680())).collect(),
            ServiceConfig::default(),
            placement,
        )
    }

    #[test]
    fn placement_is_a_pure_function_of_the_job_set() {
        let jobs: Vec<KernelJob> =
            (1..=8).map(|i| job(&format!("k{i}"), i64::from(i), i)).collect();
        for placement in [Placement::Hash, Placement::LeastLoaded] {
            let svc = sharded(3, placement);
            assert_eq!(svc.place(&jobs), svc.place(&jobs), "{placement:?} not deterministic");
            assert!(svc.place(&jobs).iter().all(|&d| d < 3));
        }
        // Hash placement keeps identical modules together.
        let svc = sharded(3, Placement::Hash);
        let twins = vec![job("a", 7, 2), job("b", 7, 9)];
        let p = svc.place(&twins);
        assert_eq!(p[0], p[1], "same fingerprint, same device");
        // Least-loaded spreads identical jobs round-robin-ish.
        let svc = sharded(2, Placement::LeastLoaded);
        let p = svc.place(&twins);
        assert_ne!(p[0], p[1], "second job goes to the idle device");
    }

    #[test]
    fn sharded_merge_is_bit_identical_to_single_device_partitions() {
        let mk = || -> Vec<KernelJob> {
            (1..=6).map(|i| job(&format!("k{i}"), i64::from(i), 4 + i)).collect()
        };
        let svc = sharded(2, Placement::LeastLoaded);
        let placements = svc.place(&mk());
        let report = svc.run(mk());
        assert!(report.all_ok());
        assert_eq!(report.placements, placements);
        // Global submission order survives the merge.
        let names: Vec<&str> = report.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, ["k1", "k2", "k3", "k4", "k5", "k6"]);
        // Each partition, run alone on a single-device service, is
        // bit-identical to the sharded run of the same partition.
        for d in 0..2 {
            let part: Vec<KernelJob> = mk()
                .into_iter()
                .zip(&placements)
                .filter(|&(_, &p)| p == d)
                .map(|(j, _)| j)
                .collect();
            let solo =
                OrionService::new(SimBackend::new(DeviceSpec::gtx680()), ServiceConfig::default())
                    .run(part);
            let sharded_part: Vec<&KernelReport> = report
                .kernels
                .iter()
                .zip(&placements)
                .filter(|&(_, &p)| p == d)
                .map(|(k, _)| k)
                .collect();
            assert_eq!(solo.kernels.len(), sharded_part.len());
            for (a, b) in solo.kernels.iter().zip(sharded_part) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.disposition, b.disposition);
                assert_eq!(
                    a.outcome.as_ref().unwrap(),
                    b.outcome.as_ref().unwrap(),
                    "kernel {} diverged between solo and sharded runs",
                    a.name
                );
                assert_eq!(a.metrics.cycle_domain(), b.metrics.cycle_domain());
            }
        }
    }
}
