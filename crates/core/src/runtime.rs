//! Runtime occupancy adaptation — §3.4 and Figure 9.
//!
//! Given the compiler's candidate list, the runtime monitors each kernel
//! invocation and walks the candidates in the predicted tuning
//! direction:
//!
//! * first iteration runs the **original** kernel;
//! * each subsequent iteration runs the next occupancy in the direction,
//!   until performance degrades — strictly worse when increasing, or
//!   more than the 2% threshold when decreasing (the paper explicitly
//!   keeps tuning *down* through the performance plateau to find the
//!   lowest occupancy with near-best performance, saving registers and
//!   energy);
//! * the surviving version is **finalized** and runs for the remaining
//!   iterations. Convergence typically takes ~3 iterations.
//!
//! [`tune_loop`] drives one kernel synchronously. Whole applications
//! go through [`OrionService`](crate::service::OrionService), whose
//! event loop runs this same walk for many kernels at once, ordered
//! longest-job-first from the probe-time occupancy curves.

use crate::compiler::{CompiledKernel, Direction, KernelVersion};
use crate::error::OrionError;
use serde::{Deserialize, Serialize};

/// Why the tuner took a step or finalized — the reason codes of the
/// Figure 8/9 decision procedure, recorded per measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneReason {
    /// First measurement (the original version); nothing to compare yet.
    Baseline,
    /// Acceptable performance; keep walking the candidate order.
    NotDegraded,
    /// The step degraded performance beyond what the direction tolerates
    /// (strictly slower when increasing; more than the threshold over
    /// the best when decreasing) — finalize the previous version.
    SlowdownExceeded,
    /// Candidate list exhausted — finalize per direction (fastest seen
    /// when increasing, lowest acceptable when decreasing).
    Exhausted,
    /// A version failed to launch and was removed from consideration;
    /// tuning continues over the survivors.
    Quarantined,
    /// The finalized version itself was quarantined; the tuner fell
    /// back to the fail-safe / original / best surviving version.
    FellBack,
    /// A service policy budget (deadline, wall budget, retry budget)
    /// expired mid-walk; the tuner settled on its safest live version
    /// instead of erroring (the paper's fail-safe philosophy lifted to
    /// the service plane).
    Degraded,
}

/// One recorded tuner step: what was measured and what the tuner did
/// with it. [`TuneOutcome::decisions`] carries the full log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneDecision {
    /// Exploration trial index (0-based).
    pub trial: usize,
    /// Version index measured in this trial.
    pub version: usize,
    /// Raw cycles observed for the invocation.
    pub cycles: u64,
    /// Work-normalized comparison value (cycles × 2^20 / work) the
    /// degradation test actually used.
    pub norm_cycles: u64,
    pub reason: TuneReason,
    /// Set when this measurement finalized a version.
    pub finalized: Option<usize>,
}

/// The feedback-driven version selector (Figure 9).
#[derive(Debug, Clone)]
pub struct DynamicTuner {
    order: Vec<usize>,
    direction: Direction,
    threshold: f64,
    /// Position in `order` currently being evaluated.
    pos: usize,
    /// Measured cycles per version (by version index).
    times: Vec<Option<u64>>,
    finalized: Option<usize>,
    trials: usize,
    decisions: Vec<TuneDecision>,
    /// Versions removed from consideration after launch failures.
    quarantined: Vec<bool>,
    /// The compiler's opposite-direction fail-safe version, if any.
    fail_safe: Option<usize>,
    /// The original (untuned) version index.
    original: usize,
}

impl DynamicTuner {
    /// Build a tuner over a compiled kernel's candidates.
    pub fn new(ck: &CompiledKernel, threshold: f64) -> Self {
        DynamicTuner {
            order: ck.tuning_order.clone(),
            direction: ck.direction,
            threshold,
            pos: 0,
            times: vec![None; ck.versions.len()],
            finalized: if ck.tuning_order.len() == 1 { Some(ck.tuning_order[0]) } else { None },
            trials: 0,
            decisions: Vec::new(),
            quarantined: vec![false; ck.versions.len()],
            fail_safe: ck.versions.iter().position(|v| v.fail_safe),
            original: ck.original,
        }
    }

    /// The version to run for the current iteration.
    ///
    /// Never indexes out of bounds: a position that walked past the end
    /// of the order (or an order emptied by quarantines) clamps to the
    /// last survivor. With every candidate quarantined this names the
    /// fail-safe (or original) as a last resort — executors should
    /// check [`DynamicTuner::all_quarantined`] before launching.
    pub fn select(&self) -> usize {
        if let Some(v) = self.finalized {
            return v;
        }
        match self.order.get(self.pos.min(self.order.len().saturating_sub(1))) {
            Some(&v) => v,
            None => self.fail_safe.unwrap_or(self.original),
        }
    }

    /// Report the measured cycles of the version returned by the last
    /// [`DynamicTuner::select`].
    pub fn record(&mut self, cycles: u64) {
        // A unit work factor always satisfies the normalization
        // contract, so this path is infallible.
        self.record_inner(cycles, 1, 0.0);
    }

    /// Report a noise-robust measurement (e.g. a mean-of-k) together
    /// with its observed relative noise margin. The degradation test's
    /// tolerance becomes `max(base, noise_margin)` for this sample —
    /// base 0 for the upward walk (whose stop rule is otherwise "any
    /// increase", a coin flip on a noisy plateau) and the slowdown
    /// threshold for the downward walk (already noise-sized, so the
    /// margin only takes over when the observed noise is larger).
    /// [`DynamicTuner::record`] is the margin-zero special case (the
    /// paper's exact behavior).
    pub fn record_noisy(&mut self, cycles: u64, noise_margin: f64) {
        self.record_inner(cycles, 1, noise_margin.max(0.0));
    }

    /// Read-only preview of the degradation comparison: the relative
    /// slowdown `cycles / anchor - 1` of a prospective (unit-work)
    /// measurement against the walk's current comparison anchor — the
    /// previous version's time when tuning upward, the best time so far
    /// when tuning downward. `None` when there is nothing to compare
    /// against (baseline trial, finalized walk, or a quarantined-away
    /// anchor). Executors use this to detect a *borderline* verdict —
    /// one that measurement noise could flip — and spend extra samples
    /// on it before committing via [`DynamicTuner::record_noisy`].
    pub fn probe_slowdown(&self, cycles: u64) -> Option<f64> {
        if self.finalized.is_some() || self.pos == 0 || self.pos >= self.order.len() {
            return None;
        }
        // Match record_inner's unit-work normalization: stored times
        // carry the 2^20 scale factor.
        let cur_t = cycles.saturating_mul(1 << 20) as f64;
        let anchor = match self.direction {
            Direction::Increasing => self.times[self.order[self.pos - 1]],
            Direction::Decreasing => self.times.iter().flatten().copied().min(),
        }?;
        Some(cur_t / anchor.max(1) as f64 - 1.0)
    }

    /// Report a measurement normalized by the invocation's amount of
    /// work (e.g. the BFS frontier size). The paper observes that bfs
    /// "does different amounts of work in each iteration, making it
    /// difficult to compare consecutive invocations" and proposes
    /// exactly this multiplicative correction as future work (§4.2);
    /// with it, variable-work applications tune reliably.
    ///
    /// # Errors
    /// Returns [`OrionError::Tuner`] if `work` is zero.
    pub fn record_with_work(&mut self, cycles: u64, work: u64) -> Result<(), OrionError> {
        if work == 0 {
            return Err(OrionError::Tuner("work normalization factor must be positive".into()));
        }
        self.record_inner(cycles, work, 0.0);
        Ok(())
    }

    fn record_inner(&mut self, cycles: u64, work: u64, margin: f64) {
        // Normalize to cycles per 2^20 work items to keep integer math.
        let raw_cycles = cycles;
        let cycles = cycles.saturating_mul(1 << 20) / work;
        if self.finalized.is_some() {
            return;
        }
        // Clamped lookup: a caller that keeps recording after the walk
        // ran off the end (or after quarantines emptied the order)
        // finalizes on the survivors instead of panicking.
        let Some(&cur) = self.order.get(self.pos) else {
            self.finalized = self.best_survivor();
            if let Some(f) = self.finalized {
                self.push_decision(TuneDecision {
                    trial: self.trials,
                    version: f,
                    cycles: raw_cycles,
                    norm_cycles: cycles,
                    reason: TuneReason::Exhausted,
                    finalized: self.finalized,
                });
            }
            return;
        };
        self.times[cur] = Some(cycles);
        self.trials += 1;
        let reason;
        if self.pos == 0 {
            self.pos += 1;
            reason = TuneReason::Baseline;
        } else {
            let prev = self.order[self.pos - 1];
            let cur_t = cycles as f64;
            let degraded = match self.direction {
                Direction::Increasing => match self.times[prev] {
                    // The margin keeps measurement noise from mimicking
                    // a slowdown; 0 restores the paper's exact "any
                    // increase stops the walk" rule.
                    Some(t) => cur_t > t as f64 * (1.0 + margin),
                    // The comparison anchor was quarantined away;
                    // nothing to regress against, keep walking.
                    None => false,
                },
                Direction::Decreasing => {
                    // `cur` was just recorded, so the minimum exists.
                    let best = self.times.iter().flatten().copied().min().unwrap_or(cycles) as f64;
                    // The paper's threshold already absorbs noise up to
                    // its own size — widening it *additively* would let
                    // a margin mask a genuine just-over-threshold
                    // degradation. The margin only takes over when the
                    // observed noise exceeds the threshold itself.
                    cur_t / best - 1.0 > self.threshold.max(margin)
                }
            };
            if degraded {
                self.finalized = Some(prev);
                reason = TuneReason::SlowdownExceeded;
            } else if self.pos + 1 >= self.order.len() {
                self.finalized = Some(match self.direction {
                    // Exhausted upward: keep the fastest observed.
                    Direction::Increasing => self
                        .order
                        .iter()
                        .copied()
                        .min_by_key(|&v| self.times[v].unwrap_or(u64::MAX))
                        .unwrap_or(cur),
                    // Exhausted downward: the current (lowest acceptable).
                    Direction::Decreasing => cur,
                });
                reason = TuneReason::Exhausted;
            } else {
                self.pos += 1;
                reason = TuneReason::NotDegraded;
            }
        }
        self.push_decision(TuneDecision {
            trial: self.trials - 1,
            version: cur,
            cycles: raw_cycles,
            norm_cycles: cycles,
            reason,
            finalized: self.finalized,
        });
    }

    /// Remove a version from tuning consideration after a launch
    /// failure. Its measurement (if any) is discarded so it can never
    /// win a best-of comparison, and tuning continues over the
    /// survivors ([`TuneReason::Quarantined`]). If the quarantined
    /// version was already finalized, the tuner *falls back* — to the
    /// fail-safe version, else the original, else the best measured
    /// survivor ([`TuneReason::FellBack`]). Quarantining the last
    /// survivor leaves [`DynamicTuner::all_quarantined`] true; the
    /// executor is expected to stop driving the kernel at that point.
    pub fn quarantine(&mut self, version: usize) {
        if self.quarantined.get(version).copied().unwrap_or(true) {
            return; // already quarantined, or out of range
        }
        self.quarantined[version] = true;
        self.times[version] = None;
        if let Some(idx) = self.order.iter().position(|&v| v == version) {
            self.order.remove(idx);
            if idx < self.pos {
                self.pos -= 1;
            }
        }
        let was_final = self.finalized == Some(version);
        let reason = if was_final {
            self.finalized = self.fallback_survivor();
            TuneReason::FellBack
        } else {
            if self.finalized.is_none() && self.pos >= self.order.len() {
                // The walk ran out of candidates; settle on a survivor,
                // or engage the last-resort fallback if none remain.
                self.finalized = self.best_survivor().or_else(|| self.fallback_survivor());
            }
            TuneReason::Quarantined
        };
        if orion_telemetry::is_enabled() {
            orion_telemetry::counter(
                "resilience",
                if was_final { "fellback" } else { "quarantined" },
                1,
            );
        }
        self.push_decision(TuneDecision {
            trial: self.trials,
            version,
            cycles: 0,
            norm_cycles: 0,
            reason,
            finalized: self.finalized,
        });
    }

    /// Settle the walk immediately because a service policy budget
    /// (deadline, wall budget, retry budget) expired. An already
    /// finalized version is kept; an unfinished walk resolves to the
    /// *original* version when it is still alive — the paper's fail-safe
    /// answer, not the best guess from a walk that was cut short — else
    /// to the usual fallback chain (fail-safe, then best measured
    /// survivor). Returns the settled version, or `None` when every
    /// version is quarantined. Records a [`TuneReason::Degraded`]
    /// decision either way, so the log explains the cut.
    pub fn degrade_to_fallback(&mut self) -> Option<usize> {
        if self.finalized.is_none() {
            let alive = |v: usize| !self.quarantined.get(v).copied().unwrap_or(true);
            self.finalized =
                Some(self.original).filter(|&v| alive(v)).or_else(|| self.fallback_survivor());
        }
        if orion_telemetry::is_enabled() {
            orion_telemetry::counter("resilience", "degraded", 1);
        }
        self.push_decision(TuneDecision {
            trial: self.trials,
            version: self.finalized.unwrap_or(self.original),
            cycles: 0,
            norm_cycles: 0,
            reason: TuneReason::Degraded,
            finalized: self.finalized,
        });
        self.finalized
    }

    /// The fastest measured survivor, else the first unmeasured one.
    fn best_survivor(&self) -> Option<usize> {
        self.order
            .iter()
            .copied()
            .filter(|&v| self.times[v].is_some())
            .min_by_key(|&v| self.times[v].unwrap_or(u64::MAX))
            .or_else(|| self.order.first().copied())
    }

    /// Last-resort replacement when the finalized version dies:
    /// fail-safe, then original, then best measured survivor.
    fn fallback_survivor(&self) -> Option<usize> {
        let alive = |v: usize| !self.quarantined.get(v).copied().unwrap_or(true);
        self.fail_safe
            .filter(|&v| alive(v))
            .or_else(|| Some(self.original).filter(|&v| alive(v)))
            .or_else(|| self.best_survivor())
    }

    /// True once every runnable version (candidates and fallbacks) has
    /// been quarantined.
    pub fn all_quarantined(&self) -> bool {
        self.order.is_empty() && self.finalized.is_none()
    }

    /// Whether a given version index has been quarantined.
    pub fn is_quarantined(&self, version: usize) -> bool {
        self.quarantined.get(version).copied().unwrap_or(false)
    }

    /// How many versions have been quarantined so far.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    fn push_decision(&mut self, decision: TuneDecision) {
        if orion_telemetry::is_enabled() {
            orion_telemetry::instant(
                "tuner",
                "decision",
                vec![
                    ("trial", decision.trial.into()),
                    ("version", decision.version.into()),
                    ("cycles", decision.cycles.into()),
                    ("norm_cycles", decision.norm_cycles.into()),
                    ("reason", format!("{:?}", decision.reason).into()),
                    (
                        "finalized",
                        decision.finalized.map_or(orion_telemetry::ArgValue::Bool(false), |v| {
                            orion_telemetry::ArgValue::U64(v as u64)
                        }),
                    ),
                ],
            );
        }
        self.decisions.push(decision);
    }

    /// The decision log so far, one entry per exploration measurement.
    pub fn decisions(&self) -> &[TuneDecision] {
        &self.decisions
    }

    /// Consume the tuner, keeping its decision log.
    pub fn into_decisions(self) -> Vec<TuneDecision> {
        self.decisions
    }

    /// The finalized version, once tuning is done.
    pub fn finalized(&self) -> Option<usize> {
        self.finalized
    }

    /// Iterations spent measuring before finalizing.
    pub fn trials(&self) -> usize {
        self.trials
    }
}

/// A completed tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// The selected version index.
    pub selected: usize,
    /// `(version, cycles)` per application iteration, in order.
    pub iterations: Vec<(usize, u64)>,
    /// Iterations spent exploring before the selection was final.
    pub converged_after: usize,
    /// Total simulated cycles across all iterations (tuning overhead
    /// included — this is what Orion-Select reports in Figure 11).
    pub total_cycles: u64,
    /// Per-measurement decision log (why each step was taken).
    pub decisions: Vec<TuneDecision>,
}

/// Drive the full tuning loop: `iterations` invocations of the kernel,
/// tuning per Figure 9, then running the finalized version.
///
/// `run` executes one launch of a version and returns its cycles.
///
/// This is the legacy closure API — a thin driver over
/// [`TuningSession`](crate::session::TuningSession), pinned bit-equal
/// to the pre-refactor loop by the equivalence suite (see
/// [`crate::reference`]).
///
/// # Errors
/// Propagates the first launch error.
pub fn tune_loop<E>(
    ck: &CompiledKernel,
    iterations: u32,
    threshold: f64,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, E>,
) -> Result<TuneOutcome, E> {
    use crate::session::{SessionStep, TuningSession};
    let mut session = TuningSession::simple(ck, iterations, threshold);
    loop {
        let step = session
            .next_step()
            .expect("invariant violated: a Simple-mode session never errors from next_step");
        match step {
            SessionStep::Launch(v) => session.on_cycles(run(&ck.versions[v])?),
            SessionStep::Done => break,
        }
    }
    Ok(session.finish().into_tune_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompiledKernel, Direction, KernelVersion};
    use orion_alloc::realize::AllocReport;
    use orion_kir::mir::MModule;
    use orion_kir::types::FuncId;

    fn fake_version(warps: u32) -> KernelVersion {
        KernelVersion {
            machine: MModule {
                funcs: vec![],
                entry: FuncId(0),
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                user_smem_bytes: 0,
                static_stack_moves: 0,
            },
            target_warps: warps,
            achieved_warps: warps,
            occupancy: f64::from(warps) / 48.0,
            extra_smem: 0,
            report: AllocReport {
                kernel_max_live: 0,
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                static_moves: 0,
                per_func: vec![],
            },
            fail_safe: false,
            label: format!("occ={warps}"),
        }
    }

    fn fake_compiled(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
        CompiledKernel {
            versions: warp_levels.iter().map(|&w| fake_version(w)).collect(),
            direction,
            original: 0,
            max_live: 40,
            tuning_order: (0..warp_levels.len()).collect(),
        }
    }

    #[test]
    fn increasing_stops_at_first_degradation() {
        // Times: v0=100, v1=80, v2=90 → picks v1 after 3 trials.
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 80, 90, 70];
        let out = tune_loop::<()>(&ck, 10, 0.02, |v| {
            let idx = ck.index_of(&v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 1);
        assert_eq!(out.converged_after, 3);
        // Remaining iterations run the finalized version.
        assert!(out.iterations[3..].iter().all(|&(v, _)| v == 1));
    }

    #[test]
    fn decreasing_walks_through_plateau() {
        // order: 48, 36, 24, 12 warps; 24 is within 2% of best, 12 not.
        let ck = fake_compiled(&[48, 36, 24, 12], Direction::Decreasing);
        let times = [100u64, 100, 101, 140];
        let out = tune_loop::<()>(&ck, 8, 0.02, |v| {
            let idx = ck.index_of(&v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 2, "lowest occupancy within the 2% band");
    }

    #[test]
    fn noise_margin_widens_the_stop_rules() {
        // Increasing, plateau with +1% wobble on the second version.
        // With margin 0 the literal "any increase stops" rule fires and
        // the walk finalizes v0; a 5% margin rides through the wobble
        // and keeps walking to the genuinely better v2.
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 101, 80];

        let mut strict = DynamicTuner::new(&ck, 0.02);
        for &t in &times {
            strict.record_noisy(t, 0.0);
            if strict.finalized().is_some() {
                break;
            }
        }
        assert_eq!(strict.finalized(), Some(0), "margin 0 keeps the paper rule");

        let mut tolerant = DynamicTuner::new(&ck, 0.02);
        for &t in &times {
            tolerant.record_noisy(t, 0.05);
        }
        assert_eq!(tolerant.finalized(), Some(2), "5% margin absorbs a 1% wobble");

        // Decreasing: 2.5% slip is over the 2% threshold alone, but
        // inside a 5% noise margin, which takes over when larger than
        // the threshold (max semantics, never additive).
        let ck = fake_compiled(&[48, 36, 24], Direction::Decreasing);
        let times = [1000u64, 1025, 1100];

        let mut strict = DynamicTuner::new(&ck, 0.02);
        for &t in &times {
            strict.record_noisy(t, 0.0);
            if strict.finalized().is_some() {
                break;
            }
        }
        assert_eq!(strict.finalized(), Some(0), "2.5% over best degrades at margin 0");

        let mut tolerant = DynamicTuner::new(&ck, 0.02);
        for &t in &times {
            tolerant.record_noisy(t, 0.05);
            if tolerant.finalized().is_some() {
                break;
            }
        }
        assert_eq!(
            tolerant.finalized(),
            Some(1),
            "within max(threshold, margin) counts as plateau; 10% slip still stops the walk"
        );
    }

    #[test]
    fn exhausting_upward_takes_best() {
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 90, 70];
        let out = tune_loop::<()>(&ck, 6, 0.02, |v| {
            let idx = ck.index_of(&v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 2);
        assert_eq!(out.converged_after, 3);
    }

    #[test]
    fn single_candidate_finalizes_immediately() {
        let ck = fake_compiled(&[48], Direction::Decreasing);
        let out = tune_loop::<()>(&ck, 4, 0.02, |_| Ok(55)).unwrap();
        assert_eq!(out.selected, 0);
        assert_eq!(out.converged_after, 0);
        assert_eq!(out.total_cycles, 4 * 55);
    }

    #[test]
    fn work_normalization_rescues_variable_work_apps() {
        // Decreasing direction. True per-work cost is identical for the
        // first two versions, but raw times differ 4x because the work
        // differs (a growing BFS frontier). Without normalization the
        // tuner would see a huge "slowdown" and finalize immediately at
        // the original; with it, tuning continues down the candidate
        // list until the genuinely slower version.
        let ck = fake_compiled(&[48, 36, 24], Direction::Decreasing);
        let work = [1000u64, 4000, 4000];
        let per_work = [50u64, 50, 80]; // version 2 is really 60% slower
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        for _ in 0..4 {
            let v = tuner.select();
            tuner.record_with_work(per_work[v] * work[v], work[v]).expect("positive work");
            if tuner.finalized().is_some() {
                break;
            }
        }
        assert_eq!(tuner.finalized(), Some(1), "lowest occupancy at equal per-work cost");

        // The naive tuner stops at the original because raw times differ.
        let mut naive = DynamicTuner::new(&ck, 0.02);
        for _ in 0..4 {
            let v = naive.select();
            naive.record(per_work[v] * work[v]);
            if naive.finalized().is_some() {
                break;
            }
        }
        assert_eq!(naive.finalized(), Some(0));
    }

    #[test]
    fn convergence_within_three_trials_typical() {
        // Bell-shaped times: best in the middle of the order.
        let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
        let times = [120u64, 95, 80, 88, 99];
        let out = tune_loop::<()>(&ck, 20, 0.02, |v| {
            let idx = ck.index_of(&v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 2);
        assert!(out.converged_after <= 4);
    }

    #[test]
    fn decision_log_records_converging_run() {
        // Times: v0=100, v1=80, v2=90 → degradation on trial 2 finalizes
        // v1 after 3 trials total.
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 80, 90, 70];
        let out = tune_loop::<()>(&ck, 10, 0.02, |v| {
            let idx = ck.index_of(&v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        // One decision per tuning trial, none for post-convergence runs.
        assert_eq!(out.decisions.len(), 3);
        assert!(out.converged_after <= 3, "typical convergence is <= ~3 trials");
        assert_eq!(out.decisions[0].reason, TuneReason::Baseline);
        assert_eq!(out.decisions[0].version, 0);
        assert_eq!(out.decisions[0].cycles, 100);
        assert_eq!(out.decisions[0].finalized, None);
        assert_eq!(out.decisions[1].reason, TuneReason::NotDegraded);
        assert_eq!(out.decisions[1].finalized, None);
        let last = out.decisions.last().unwrap();
        assert_eq!(last.reason, TuneReason::SlowdownExceeded);
        assert_eq!(last.finalized, Some(1), "backs off to the previous version");
        assert_eq!(last.trial, 2);
    }

    fn fake_compiled_with_fail_safe(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
        let mut ck = fake_compiled(warp_levels, direction);
        let mut fs = fake_version(4);
        fs.fail_safe = true;
        fs.label = "fail-safe".into();
        ck.versions.push(fs); // present in versions, absent from tuning_order
        ck
    }

    #[test]
    fn record_with_zero_work_is_an_error_not_a_panic() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        let err = tuner.record_with_work(100, 0).unwrap_err();
        assert!(matches!(err, crate::error::OrionError::Tuner(_)));
        assert_eq!(tuner.trials(), 0, "rejected measurement must not count");
    }

    #[test]
    fn quarantine_skips_version_and_tuning_continues() {
        // v1 dies after its measurement; the walk continues over v2/v3
        // and v1's time can never win a comparison.
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 10, 90, 95];
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        // Measure v0, then v1 (suspiciously fast — it then crashes).
        tuner.record(times[0]);
        assert_eq!(tuner.select(), 1);
        tuner.record(times[1]);
        tuner.quarantine(1);
        assert!(tuner.is_quarantined(1));
        // Walk resumes at v2; v2 at 90 beats v0's 100, v3 at 95 degrades.
        while tuner.finalized().is_none() {
            let v = tuner.select();
            assert_ne!(v, 1, "quarantined version must never be selected");
            tuner.record(times[v]);
        }
        assert_eq!(tuner.finalized(), Some(2), "best survivor, not the dead v1");
        assert!(tuner
            .decisions()
            .iter()
            .any(|d| d.reason == TuneReason::Quarantined && d.version == 1));
    }

    #[test]
    fn quarantining_finalized_version_falls_back_to_fail_safe() {
        let ck = fake_compiled_with_fail_safe(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 80, 90];
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        for _ in 0..3 {
            let v = tuner.select();
            tuner.record(times[v]);
        }
        assert_eq!(tuner.finalized(), Some(1));
        tuner.quarantine(1);
        assert_eq!(tuner.finalized(), Some(3), "fail-safe version takes over");
        let last = tuner.decisions().last().unwrap();
        assert_eq!(last.reason, TuneReason::FellBack);
        assert!(!tuner.all_quarantined());
    }

    #[test]
    fn quarantining_everything_is_detectable_and_select_stays_total() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        tuner.quarantine(0);
        tuner.quarantine(1);
        assert!(tuner.all_quarantined());
        assert_eq!(tuner.quarantined_count(), 2);
        // select() still returns a last-resort index without panicking.
        let _ = tuner.select();
    }

    #[test]
    fn quarantine_before_first_measurement_keeps_walk_sound() {
        // Quarantine the version currently under evaluation before it
        // was ever measured: select() moves on, no panic, and the
        // degradation test still anchors correctly.
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 0, 90, 95];
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        tuner.record(times[0]);
        assert_eq!(tuner.select(), 1);
        tuner.quarantine(1); // died on launch, never measured
        assert_eq!(tuner.select(), 2);
        tuner.record(times[2]);
        tuner.record(times[3]);
        assert_eq!(tuner.finalized(), Some(2));
    }

    #[test]
    fn degrade_mid_walk_settles_on_original_and_logs_it() {
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        tuner.record(100); // baseline measured, walk in flight
        assert_eq!(tuner.finalized(), None);
        let settled = tuner.degrade_to_fallback();
        assert_eq!(settled, Some(0), "unfinished walk degrades to the original");
        assert_eq!(tuner.finalized(), Some(0));
        let last = tuner.decisions().last().unwrap();
        assert_eq!(last.reason, TuneReason::Degraded);
        assert_eq!(last.finalized, Some(0));
    }

    #[test]
    fn degrade_keeps_finalized_and_prefers_fail_safe_over_dead_original() {
        // Already finalized: degrade is a no-op on the selection.
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 80, 90];
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        for _ in 0..3 {
            let v = tuner.select();
            tuner.record(times[v]);
        }
        assert_eq!(tuner.finalized(), Some(1));
        assert_eq!(tuner.degrade_to_fallback(), Some(1), "finalized selection is kept");

        // Dead original: the fail-safe takes over.
        let ck = fake_compiled_with_fail_safe(&[8, 16, 32], Direction::Increasing);
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        tuner.quarantine(0); // the original
        assert_eq!(tuner.degrade_to_fallback(), Some(3), "fail-safe replaces a dead original");
    }

    #[test]
    fn decision_log_records_exhausted_run() {
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 90, 70];
        let out = tune_loop::<()>(&ck, 6, 0.02, |v| {
            let idx = ck.index_of(&v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        let last = out.decisions.last().unwrap();
        assert!(
            matches!(last.reason, TuneReason::SlowdownExceeded | TuneReason::Exhausted),
            "final decision must carry a finalize reason, got {:?}",
            last.reason
        );
        assert_eq!(last.reason, TuneReason::Exhausted);
        assert_eq!(last.finalized, Some(2), "exhausting the list keeps the best version");
    }
}
