//! Runtime occupancy adaptation — §3.4 and Figure 9.
//!
//! Given the compiler's candidate list, the runtime monitors each kernel
//! invocation and walks the candidates in the predicted tuning
//! direction:
//!
//! * first iteration runs the **original** kernel;
//! * each subsequent iteration runs the next occupancy in the direction,
//!   until performance degrades — strictly worse when increasing, or
//!   more than the 2% threshold when decreasing (the paper explicitly
//!   keeps tuning *down* through the performance plateau to find the
//!   lowest occupancy with near-best performance, saving registers and
//!   energy);
//! * the surviving version is **finalized** and runs for the remaining
//!   iterations. Convergence typically takes ~3 iterations.

use crate::compiler::{CompiledKernel, Direction, KernelVersion};
use serde::{Deserialize, Serialize};

/// Why the tuner took a step or finalized — the reason codes of the
/// Figure 8/9 decision procedure, recorded per measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneReason {
    /// First measurement (the original version); nothing to compare yet.
    Baseline,
    /// Acceptable performance; keep walking the candidate order.
    NotDegraded,
    /// The step degraded performance beyond what the direction tolerates
    /// (strictly slower when increasing; more than the threshold over
    /// the best when decreasing) — finalize the previous version.
    SlowdownExceeded,
    /// Candidate list exhausted — finalize per direction (fastest seen
    /// when increasing, lowest acceptable when decreasing).
    Exhausted,
}

/// One recorded tuner step: what was measured and what the tuner did
/// with it. [`TuneOutcome::decisions`] carries the full log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneDecision {
    /// Exploration trial index (0-based).
    pub trial: usize,
    /// Version index measured in this trial.
    pub version: usize,
    /// Raw cycles observed for the invocation.
    pub cycles: u64,
    /// Work-normalized comparison value (cycles × 2^20 / work) the
    /// degradation test actually used.
    pub norm_cycles: u64,
    pub reason: TuneReason,
    /// Set when this measurement finalized a version.
    pub finalized: Option<usize>,
}

/// The feedback-driven version selector (Figure 9).
#[derive(Debug, Clone)]
pub struct DynamicTuner {
    order: Vec<usize>,
    direction: Direction,
    threshold: f64,
    /// Position in `order` currently being evaluated.
    pos: usize,
    /// Measured cycles per version (by version index).
    times: Vec<Option<u64>>,
    finalized: Option<usize>,
    trials: usize,
    decisions: Vec<TuneDecision>,
}

impl DynamicTuner {
    /// Build a tuner over a compiled kernel's candidates.
    pub fn new(ck: &CompiledKernel, threshold: f64) -> Self {
        DynamicTuner {
            order: ck.tuning_order.clone(),
            direction: ck.direction,
            threshold,
            pos: 0,
            times: vec![None; ck.versions.len()],
            finalized: if ck.tuning_order.len() == 1 {
                Some(ck.tuning_order[0])
            } else {
                None
            },
            trials: 0,
            decisions: Vec::new(),
        }
    }

    /// The version to run for the current iteration.
    pub fn select(&self) -> usize {
        self.finalized.unwrap_or(self.order[self.pos])
    }

    /// Report the measured cycles of the version returned by the last
    /// [`DynamicTuner::select`].
    pub fn record(&mut self, cycles: u64) {
        self.record_with_work(cycles, 1);
    }

    /// Report a measurement normalized by the invocation's amount of
    /// work (e.g. the BFS frontier size). The paper observes that bfs
    /// "does different amounts of work in each iteration, making it
    /// difficult to compare consecutive invocations" and proposes
    /// exactly this multiplicative correction as future work (§4.2);
    /// with it, variable-work applications tune reliably.
    ///
    /// # Panics
    /// Panics if `work` is zero.
    pub fn record_with_work(&mut self, cycles: u64, work: u64) {
        assert!(work > 0, "work must be positive");
        // Normalize to cycles per 2^20 work items to keep integer math.
        let raw_cycles = cycles;
        let cycles = cycles.saturating_mul(1 << 20) / work;
        if self.finalized.is_some() {
            return;
        }
        let cur = self.order[self.pos];
        self.times[cur] = Some(cycles);
        self.trials += 1;
        let reason;
        if self.pos == 0 {
            self.pos += 1;
            reason = TuneReason::Baseline;
        } else {
            let prev = self.order[self.pos - 1];
            let prev_t = self.times[prev].expect("previous was measured") as f64;
            let cur_t = cycles as f64;
            let degraded = match self.direction {
                Direction::Increasing => cur_t > prev_t,
                Direction::Decreasing => {
                    let best = self
                        .times
                        .iter()
                        .flatten()
                        .copied()
                        .min()
                        .expect("measured") as f64;
                    cur_t / best - 1.0 > self.threshold
                }
            };
            if degraded {
                self.finalized = Some(prev);
                reason = TuneReason::SlowdownExceeded;
            } else if self.pos + 1 >= self.order.len() {
                self.finalized = Some(match self.direction {
                    // Exhausted upward: keep the fastest observed.
                    Direction::Increasing => self
                        .order
                        .iter()
                        .copied()
                        .min_by_key(|&v| self.times[v].unwrap_or(u64::MAX))
                        .expect("nonempty order"),
                    // Exhausted downward: the current (lowest acceptable).
                    Direction::Decreasing => cur,
                });
                reason = TuneReason::Exhausted;
            } else {
                self.pos += 1;
                reason = TuneReason::NotDegraded;
            }
        }
        let decision = TuneDecision {
            trial: self.trials - 1,
            version: cur,
            cycles: raw_cycles,
            norm_cycles: cycles,
            reason,
            finalized: self.finalized,
        };
        if orion_telemetry::is_enabled() {
            orion_telemetry::instant(
                "tuner",
                "decision",
                vec![
                    ("trial", decision.trial.into()),
                    ("version", decision.version.into()),
                    ("cycles", decision.cycles.into()),
                    ("norm_cycles", decision.norm_cycles.into()),
                    ("reason", format!("{:?}", decision.reason).into()),
                    (
                        "finalized",
                        decision
                            .finalized
                            .map_or(orion_telemetry::ArgValue::Bool(false), |v| {
                                orion_telemetry::ArgValue::U64(v as u64)
                            }),
                    ),
                ],
            );
        }
        self.decisions.push(decision);
    }

    /// The decision log so far, one entry per exploration measurement.
    pub fn decisions(&self) -> &[TuneDecision] {
        &self.decisions
    }

    /// Consume the tuner, keeping its decision log.
    pub fn into_decisions(self) -> Vec<TuneDecision> {
        self.decisions
    }

    /// The finalized version, once tuning is done.
    pub fn finalized(&self) -> Option<usize> {
        self.finalized
    }

    /// Iterations spent measuring before finalizing.
    pub fn trials(&self) -> usize {
        self.trials
    }
}

/// A completed tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// The selected version index.
    pub selected: usize,
    /// `(version, cycles)` per application iteration, in order.
    pub iterations: Vec<(usize, u64)>,
    /// Iterations spent exploring before the selection was final.
    pub converged_after: usize,
    /// Total simulated cycles across all iterations (tuning overhead
    /// included — this is what Orion-Select reports in Figure 11).
    pub total_cycles: u64,
    /// Per-measurement decision log (why each step was taken).
    pub decisions: Vec<TuneDecision>,
}

/// Drive the full tuning loop: `iterations` invocations of the kernel,
/// tuning per Figure 9, then running the finalized version.
///
/// `run` executes one launch of a version and returns its cycles.
///
/// # Errors
/// Propagates the first launch error.
pub fn tune_loop<E>(
    ck: &CompiledKernel,
    iterations: u32,
    threshold: f64,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, E>,
) -> Result<TuneOutcome, E> {
    let mut tuner = DynamicTuner::new(ck, threshold);
    let mut iters = Vec::with_capacity(iterations as usize);
    let mut total = 0u64;
    for _ in 0..iterations {
        let v = tuner.select();
        let cycles = run(&ck.versions[v])?;
        total += cycles;
        iters.push((v, cycles));
        tuner.record(cycles);
    }
    let selected = tuner.finalized().unwrap_or_else(|| tuner.select());
    Ok(TuneOutcome {
        selected,
        iterations: iters,
        converged_after: tuner.trials(),
        total_cycles: total,
        decisions: tuner.into_decisions(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompiledKernel, Direction, KernelVersion};
    use orion_alloc::realize::AllocReport;
    use orion_kir::mir::MModule;
    use orion_kir::types::FuncId;

    fn fake_version(warps: u32) -> KernelVersion {
        KernelVersion {
            machine: MModule {
                funcs: vec![],
                entry: FuncId(0),
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                user_smem_bytes: 0,
                static_stack_moves: 0,
            },
            target_warps: warps,
            achieved_warps: warps,
            occupancy: f64::from(warps) / 48.0,
            extra_smem: 0,
            report: AllocReport {
                kernel_max_live: 0,
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                static_moves: 0,
                per_func: vec![],
            },
            fail_safe: false,
            label: format!("occ={warps}"),
        }
    }

    fn fake_compiled(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
        CompiledKernel {
            versions: warp_levels.iter().map(|&w| fake_version(w)).collect(),
            direction,
            original: 0,
            max_live: 40,
            tuning_order: (0..warp_levels.len()).collect(),
        }
    }

    #[test]
    fn increasing_stops_at_first_degradation() {
        // Times: v0=100, v1=80, v2=90 → picks v1 after 3 trials.
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 80, 90, 70];
        let out = tune_loop::<()>(&ck, 10, 0.02, |v| {
            let idx = ck.versions.iter().position(|x| x.label == v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 1);
        assert_eq!(out.converged_after, 3);
        // Remaining iterations run the finalized version.
        assert!(out.iterations[3..].iter().all(|&(v, _)| v == 1));
    }

    #[test]
    fn decreasing_walks_through_plateau() {
        // order: 48, 36, 24, 12 warps; 24 is within 2% of best, 12 not.
        let ck = fake_compiled(&[48, 36, 24, 12], Direction::Decreasing);
        let times = [100u64, 100, 101, 140];
        let out = tune_loop::<()>(&ck, 8, 0.02, |v| {
            let idx = ck.versions.iter().position(|x| x.label == v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 2, "lowest occupancy within the 2% band");
    }

    #[test]
    fn exhausting_upward_takes_best() {
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 90, 70];
        let out = tune_loop::<()>(&ck, 6, 0.02, |v| {
            let idx = ck.versions.iter().position(|x| x.label == v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 2);
        assert_eq!(out.converged_after, 3);
    }

    #[test]
    fn single_candidate_finalizes_immediately() {
        let ck = fake_compiled(&[48], Direction::Decreasing);
        let out = tune_loop::<()>(&ck, 4, 0.02, |_| Ok(55)).unwrap();
        assert_eq!(out.selected, 0);
        assert_eq!(out.converged_after, 0);
        assert_eq!(out.total_cycles, 4 * 55);
    }

    #[test]
    fn work_normalization_rescues_variable_work_apps() {
        // Decreasing direction. True per-work cost is identical for the
        // first two versions, but raw times differ 4x because the work
        // differs (a growing BFS frontier). Without normalization the
        // tuner would see a huge "slowdown" and finalize immediately at
        // the original; with it, tuning continues down the candidate
        // list until the genuinely slower version.
        let ck = fake_compiled(&[48, 36, 24], Direction::Decreasing);
        let work = [1000u64, 4000, 4000];
        let per_work = [50u64, 50, 80]; // version 2 is really 60% slower
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        for _ in 0..4 {
            let v = tuner.select();
            tuner.record_with_work(per_work[v] * work[v], work[v]);
            if tuner.finalized().is_some() {
                break;
            }
        }
        assert_eq!(tuner.finalized(), Some(1), "lowest occupancy at equal per-work cost");

        // The naive tuner stops at the original because raw times differ.
        let mut naive = DynamicTuner::new(&ck, 0.02);
        for _ in 0..4 {
            let v = naive.select();
            naive.record(per_work[v] * work[v]);
            if naive.finalized().is_some() {
                break;
            }
        }
        assert_eq!(naive.finalized(), Some(0));
    }

    #[test]
    fn convergence_within_three_trials_typical() {
        // Bell-shaped times: best in the middle of the order.
        let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
        let times = [120u64, 95, 80, 88, 99];
        let out = tune_loop::<()>(&ck, 20, 0.02, |v| {
            let idx = ck.versions.iter().position(|x| x.label == v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        assert_eq!(out.selected, 2);
        assert!(out.converged_after <= 4);
    }

    #[test]
    fn decision_log_records_converging_run() {
        // Times: v0=100, v1=80, v2=90 → degradation on trial 2 finalizes
        // v1 after 3 trials total.
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 80, 90, 70];
        let out = tune_loop::<()>(&ck, 10, 0.02, |v| {
            let idx = ck.versions.iter().position(|x| x.label == v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        // One decision per tuning trial, none for post-convergence runs.
        assert_eq!(out.decisions.len(), 3);
        assert!(out.converged_after <= 3, "typical convergence is <= ~3 trials");
        assert_eq!(out.decisions[0].reason, TuneReason::Baseline);
        assert_eq!(out.decisions[0].version, 0);
        assert_eq!(out.decisions[0].cycles, 100);
        assert_eq!(out.decisions[0].finalized, None);
        assert_eq!(out.decisions[1].reason, TuneReason::NotDegraded);
        assert_eq!(out.decisions[1].finalized, None);
        let last = out.decisions.last().unwrap();
        assert_eq!(last.reason, TuneReason::SlowdownExceeded);
        assert_eq!(last.finalized, Some(1), "backs off to the previous version");
        assert_eq!(last.trial, 2);
    }

    #[test]
    fn decision_log_records_exhausted_run() {
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 90, 70];
        let out = tune_loop::<()>(&ck, 6, 0.02, |v| {
            let idx = ck.versions.iter().position(|x| x.label == v.label).unwrap();
            Ok(times[idx])
        })
        .unwrap();
        let last = out.decisions.last().unwrap();
        assert!(
            matches!(last.reason, TuneReason::SlowdownExceeded | TuneReason::Exhausted),
            "final decision must carry a finalize reason, got {:?}",
            last.reason
        );
        assert_eq!(last.reason, TuneReason::Exhausted);
        assert_eq!(last.finalized, Some(2), "exhausting the list keeps the best version");
    }
}
