//! Compile-time occupancy tuning — §3.3 and Figure 8.
//!
//! The compiler decides the tuning *direction* from the max-live metric
//! (≥ 32 registers of simultaneous liveness ⇒ occupancy is register-
//! limited and can be tuned upward; below that the kernel already runs
//! at hardware-maximum occupancy and can only be tuned downward), then
//! emits a small set of candidate kernel versions (≤ 5) for the runtime
//! stage:
//!
//! * the **original** version — all live values in the minimal number of
//!   registers (or the per-thread hardware cap);
//! * the **conservative** version — the highest occupancy at which all
//!   values still fit in on-chip memory (registers + private shared
//!   memory slots);
//! * stepped versions between the conservative occupancy and the
//!   hardware maximum (upward direction), realized by re-allocation; or
//! * stepped *downward* versions realized without recompilation, by
//!   padding the driver's per-block shared-memory reservation;
//! * a fail-safe version in the opposite direction.

use crate::budget::budget_for_warps;
use crate::error::OrionError;
use crate::version::VersionBuilder;
use orion_alloc::realize::{kernel_max_live, AllocReport, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::occupancy::{occupancy, KernelResources};
use orion_kir::function::Module;
use orion_kir::mir::MModule;
use serde::{Deserialize, Serialize};

/// The max-live threshold that selects the tuning direction (the number
/// of registers per thread that still allows hardware-maximum occupancy
/// on the Kepler evaluation platform — §3.3).
pub const MAX_LIVE_THRESHOLD: u32 = 32;

/// Tuning direction (Figure 8, lines 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// High register pressure: start low, add occupancy.
    Increasing,
    /// Low pressure: already at maximum, try saving resources downward.
    Decreasing,
}

/// Configuration of the Orion compiler + runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningConfig {
    /// Threads per block of the application's launches.
    pub block: u32,
    /// Whether the application offers enough iterations (or enough
    /// threads for kernel splitting) to tune dynamically; otherwise the
    /// static selection is used (Figure 8, line 13).
    pub can_tune: bool,
    /// Maximum candidate versions (the paper emits ≤ 5).
    pub max_versions: usize,
    /// Relative slowdown tolerated while tuning downward (Figure 9).
    pub slowdown_threshold: f64,
}

impl TuningConfig {
    /// Defaults matching the paper: ≤5 versions, 2% threshold.
    pub fn new(block: u32) -> Self {
        TuningConfig { block, can_tune: true, max_versions: 5, slowdown_threshold: 0.02 }
    }
}

/// One candidate kernel binary at a specific occupancy level.
#[derive(Debug, Clone)]
pub struct KernelVersion {
    /// The compiled binary.
    pub machine: MModule,
    /// Warps per SM this version targets.
    pub target_warps: u32,
    /// Warps per SM the driver will actually schedule.
    pub achieved_warps: u32,
    /// Occupancy (achieved warps / hardware max).
    pub occupancy: f64,
    /// Driver-side shared-memory padding (downward tuning).
    pub extra_smem: u32,
    /// Allocator report for this version.
    pub report: AllocReport,
    /// True for the opposite-direction fail-safe version.
    pub fail_safe: bool,
    /// Human-readable tag ("original", "conservative", "occ=24", ...).
    pub label: String,
}

impl KernelVersion {
    /// Driver-visible resources of this version.
    pub fn resources(&self, block: u32) -> KernelResources {
        KernelResources {
            regs_per_thread: self.machine.regs_per_thread,
            smem_per_block: self.machine.smem_bytes_per_block(block) + self.extra_smem,
            block_size: block,
        }
    }
}

/// Output of the compile-time stage: the candidate set plus metadata.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Candidate versions; `versions[original]` is the original one.
    pub versions: Vec<KernelVersion>,
    pub direction: Direction,
    /// Index of the original version.
    pub original: usize,
    /// The kernel's max-live (words).
    pub max_live: u32,
    /// Index order the runtime should try (original first, then the
    /// tuning direction).
    pub tuning_order: Vec<usize>,
}

impl CompiledKernel {
    /// Candidate count excluding the fail-safe (the paper's "≤ 5").
    pub fn num_candidates(&self) -> usize {
        self.versions.iter().filter(|v| !v.fail_safe).count()
    }

    /// The index of the version labeled `label`.
    ///
    /// # Errors
    /// [`OrionError::UnknownVersion`] when no version carries the label.
    pub fn index_of(&self, label: &str) -> Result<usize, OrionError> {
        self.versions
            .iter()
            .position(|v| v.label == label)
            .ok_or_else(|| OrionError::UnknownVersion { label: label.to_string() })
    }
}

/// Run the compile-time stage of Orion on a kernel module.
///
/// # Errors
/// Propagates verifier and allocator failures.
pub fn compile(
    module: &Module,
    dev: &DeviceSpec,
    cfg: &TuningConfig,
) -> Result<CompiledKernel, OrionError> {
    orion_kir::verify::verify(module)?;
    let max_live = kernel_max_live(module)?;
    let direction =
        if max_live >= MAX_LIVE_THRESHOLD { Direction::Increasing } else { Direction::Decreasing };
    let warps_per_block = cfg.block.div_ceil(dev.warp_size);
    let vb = VersionBuilder::new(dev, cfg.block, module);

    // Original: minimal registers holding all live values (or hw cap).
    let original_regs = (max_live.min(u32::from(dev.max_regs_per_thread)) as u16).max(2);
    let original =
        vb.realize(SlotBudget { reg_slots: original_regs, smem_slots: 0 }, 0, "original")?;

    let mut versions: Vec<KernelVersion> = vec![original];
    let original_idx = 0usize;

    match direction {
        Direction::Increasing if cfg.can_tune => {
            // Conservative: highest occupancy where everything still
            // fits on-chip (registers + private smem slots).
            let mut levels: Vec<u32> = Vec::new();
            let mut w = versions[0].achieved_warps + warps_per_block;
            while w <= dev.max_warps_per_sm {
                if budget_for_warps(dev, cfg.block, module.user_smem_bytes, w).is_some() {
                    levels.push(w);
                }
                w += warps_per_block;
            }
            let conservative_w = levels
                .iter()
                .copied()
                .filter(|&w| {
                    budget_for_warps(dev, cfg.block, module.user_smem_bytes, w)
                        .is_some_and(|b| u32::from(b.total()) >= max_live)
                })
                .max();
            // Candidate levels: conservative upward to max, thinned to
            // the version budget.
            let from = conservative_w.unwrap_or_else(|| levels.first().copied().unwrap_or(0));
            let mut cands: Vec<u32> = levels.into_iter().filter(|&l| l >= from).collect();
            let room = cfg.max_versions.saturating_sub(1).max(1);
            while cands.len() > room {
                // Thin evenly, always keeping the endpoints.
                let mut kept = Vec::with_capacity(room);
                for i in 0..room {
                    let idx = i * (cands.len() - 1) / (room - 1).max(1);
                    kept.push(cands[idx]);
                }
                kept.dedup();
                cands = kept;
                if cands.len() <= room {
                    break;
                }
            }
            for (i, w) in cands.iter().copied().enumerate() {
                let budget = budget_for_warps(dev, cfg.block, module.user_smem_bytes, w)
                    .expect("level was achievable");
                let label = if Some(w) == conservative_w && i == 0 {
                    "conservative".to_string()
                } else {
                    format!("occ={w}")
                };
                let v = vb.realize(budget, 0, label)?;
                // Skip duplicates (same achieved occupancy as an
                // existing version).
                if versions.iter().any(|x| {
                    x.achieved_warps == v.achieved_warps
                        && x.machine.regs_per_thread == v.machine.regs_per_thread
                }) {
                    continue;
                }
                versions.push(v);
            }
            // Fail-safe: one step *down* from the original via padding.
            let target = versions[0].achieved_warps.saturating_sub(warps_per_block);
            if target > 0 {
                if let Some(mut fs) = vb.padded(&versions[0], target) {
                    fs.fail_safe = true;
                    fs.label = "fail-safe-down".to_string();
                    versions.push(fs);
                }
            }
        }
        Direction::Decreasing if cfg.can_tune => {
            // Downward levels realized by shared-memory padding of the
            // *same* binary (no recompilation, Figure 8's note).
            let base_occ = occupancy(dev, &versions[0].resources(cfg.block));
            let max_blocks = base_occ.active_blocks;
            let mut added = 0usize;
            for blocks in (1..max_blocks).rev() {
                if added + 2 > cfg.max_versions {
                    break;
                }
                let target = blocks * warps_per_block;
                let Some(v) = vb.padded(&versions[0], target) else {
                    continue;
                };
                if versions.iter().any(|x| x.achieved_warps == v.achieved_warps) {
                    continue;
                }
                versions.push(v);
                added += 1;
            }
            // Fail-safe upward is impossible here (already at max), so
            // none is added — matching the paper's observation that the
            // decreasing direction needs no extra binaries.
        }
        _ => {
            // Static selection (Figure 8, line 13 and lines 15–19): no
            // dynamic tuning available. For the increasing direction,
            // pick the conservative version; for the decreasing one,
            // keep the lowest occupancy that still covers memory
            // latency by the static latency-coverage estimate.
            if direction == Direction::Increasing {
                if let Some(w) = (versions[0].achieved_warps..=dev.max_warps_per_sm)
                    .step_by(warps_per_block as usize)
                    .filter(|&w| {
                        budget_for_warps(dev, cfg.block, module.user_smem_bytes, w)
                            .is_some_and(|b| u32::from(b.total()) >= max_live)
                    })
                    .max()
                {
                    let budget = budget_for_warps(dev, cfg.block, module.user_smem_bytes, w)
                        .expect("achievable");
                    let v = vb.realize(budget, 0, "static")?;
                    versions = vec![v];
                }
            } else {
                let min_warps = static_min_warps(module, dev);
                let base = occupancy(dev, &versions[0].resources(cfg.block));
                let mut best: Option<KernelVersion> = None;
                for blocks in 1..=base.active_blocks {
                    let target = blocks * warps_per_block;
                    if target < min_warps {
                        continue;
                    }
                    let mut v = vb
                        .padded(&versions[0], target)
                        .unwrap_or_else(|| vb.repad(&versions[0], target, 0));
                    v.label = "static".to_string();
                    best = Some(v);
                    break;
                }
                if let Some(v) = best {
                    versions = vec![v];
                }
            }
        }
    }

    let tuning_order: Vec<usize> = std::iter::once(original_idx)
        .chain((0..versions.len()).filter(|&i| i != original_idx && !versions[i].fail_safe))
        .collect();
    if orion_telemetry::is_enabled() {
        orion_telemetry::instant(
            "compile",
            "kernel",
            vec![
                ("max_live", max_live.into()),
                ("direction", format!("{direction:?}").into()),
                ("candidates", versions.iter().filter(|v| !v.fail_safe).count().into()),
                ("versions", versions.len().into()),
            ],
        );
        for v in &versions {
            orion_telemetry::instant(
                "compile",
                "version",
                vec![
                    ("label", v.label.as_str().into()),
                    ("achieved_warps", v.achieved_warps.into()),
                    ("regs_per_thread", v.machine.regs_per_thread.into()),
                    ("extra_smem", v.extra_smem.into()),
                    ("occupancy", v.occupancy.into()),
                    ("fail_safe", v.fail_safe.into()),
                ],
            );
        }
    }
    Ok(CompiledKernel { versions, direction, original: original_idx, max_live, tuning_order })
}

/// Static estimate of the fewest warps that still cover memory latency
/// (the Figure 8 `WS * CDI / DL` test, interpreted as: each warp issues
/// roughly `insts_per_mem × issue interval` cycles of work per memory
/// access of `DL` cycles latency, so `warps ≥ DL / work` hides it).
pub fn static_min_warps(module: &Module, dev: &DeviceSpec) -> u32 {
    let kernel = module.kernel();
    let total = kernel.num_insts().max(1) as u64;
    let mem =
        kernel.blocks.iter().flat_map(|b| &b.insts).filter(|i| i.op.is_mem()).count().max(1) as u64;
    let work_per_mem = (total / mem).max(1) * dev.alu_latency / 4;
    (dev.dram_latency / work_per_mem.max(1)).clamp(4, u64::from(dev.max_warps_per_sm)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn pressure_kernel(live: usize) -> Module {
        let mut b = FunctionBuilder::kernel("p");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let vals: Vec<_> = (0..live).map(|k| b.fmul(x, Operand::Imm(k as i64))).collect();
        let mut acc = b.mov_f32(0.0);
        for v in vals {
            acc = b.fadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, addr, acc, 0);
        Module::new(b.finish())
    }

    #[test]
    fn high_pressure_tunes_upward() {
        let dev = DeviceSpec::gtx680();
        let m = pressure_kernel(40);
        let ck = compile(&m, &dev, &TuningConfig::new(256)).unwrap();
        assert_eq!(ck.direction, Direction::Increasing);
        assert!(ck.max_live >= 40);
        assert!(ck.num_candidates() >= 2, "{:?}", ck.versions.len());
        assert!(ck.num_candidates() <= 5);
        // Upward versions have increasing occupancy.
        let occs: Vec<u32> =
            ck.tuning_order.iter().map(|&i| ck.versions[i].achieved_warps).collect();
        assert!(occs.windows(2).all(|w| w[1] >= w[0]), "{occs:?}");
    }

    #[test]
    fn low_pressure_tunes_downward() {
        let dev = DeviceSpec::c2075();
        let m = pressure_kernel(4);
        let ck = compile(&m, &dev, &TuningConfig::new(192)).unwrap();
        assert_eq!(ck.direction, Direction::Decreasing);
        // Original runs at hardware max.
        assert_eq!(ck.versions[ck.original].achieved_warps, dev.max_warps_per_sm);
        // Downward versions share the binary but pad shared memory.
        let down: Vec<&KernelVersion> = ck.versions.iter().filter(|v| v.extra_smem > 0).collect();
        assert!(!down.is_empty());
        for v in down {
            assert!(v.achieved_warps < dev.max_warps_per_sm);
            assert_eq!(v.machine.regs_per_thread, ck.versions[ck.original].machine.regs_per_thread);
        }
    }

    #[test]
    fn candidate_budget_respected() {
        let dev = DeviceSpec::c2075();
        let m = pressure_kernel(40);
        let mut cfg = TuningConfig::new(128);
        cfg.max_versions = 3;
        let ck = compile(&m, &dev, &cfg).unwrap();
        assert!(ck.num_candidates() <= 3);
    }

    #[test]
    fn static_selection_when_cannot_tune() {
        let dev = DeviceSpec::c2075();
        let m = pressure_kernel(40);
        let mut cfg = TuningConfig::new(128);
        cfg.can_tune = false;
        let ck = compile(&m, &dev, &cfg).unwrap();
        assert_eq!(ck.versions.len(), 1);
        assert_eq!(ck.versions[0].label, "static");
    }

    #[test]
    fn static_min_warps_sane() {
        let dev = DeviceSpec::c2075();
        let m = pressure_kernel(6);
        let w = static_min_warps(&m, &dev);
        assert!(w >= 4 && w <= dev.max_warps_per_sm);
    }
}
