//! The unified tuning state machine.
//!
//! Before PR 5 the repo carried three near-copies of the Figure 9 walk:
//! [`tune_loop`](crate::runtime::tune_loop) (fault-free),
//! [`resilient_tune_loop`](crate::resilient::resilient_tune_loop)
//! (retry / robust measurement / quarantine / fallback), and the
//! splitting path. [`TuningSession`] subsumes all of them behind one
//! *pull-based* interface: the session never launches anything itself —
//! it hands out [`SessionStep::Launch`] requests, the caller executes
//! them however it likes (a [`Backend`](crate::backend::Backend), a
//! closure, a replay log) and feeds the result back. That inversion is
//! what lets one state machine serve a closure-driven legacy API, a
//! backend-driven service, and a deterministic replay test equally —
//! and, since PR 9, what lets [`OrionService`](crate::service::OrionService)'s
//! event loop multiplex many suspended sessions over one async
//! submission queue: a session parked at a [`SessionStep::Launch`] is
//! just a value, costing nothing while its ticket is in flight.
//!
//! The session is a typed state machine:
//!
//! ```text
//! Warmup ──► Walking ◄──► Probing
//!    │          │            │
//!    ├──────────┼────────────┤──► Finalized ──► Quarantined | Degraded
//!    ├──────────┼────────────┤──────────────► Quarantined
//!    └──────────┴────────────┴──────────────► Degraded
//! ```
//!
//! * **Warmup** — measuring the baseline (first) version; nothing to
//!   compare against yet.
//! * **Walking** — stepping through the candidate order, applying the
//!   degradation test per measurement.
//! * **Probing** — a borderline verdict earned an extension round of
//!   extra samples before the walk commits (resilient mode only).
//! * **Finalized** — a version won; remaining iterations run it.
//! * **Quarantined** — every candidate (fallbacks included) died;
//!   terminal.
//! * **Degraded** — a service policy budget expired
//!   ([`TuningSession::degrade`]); the session settled on its fail-safe
//!   selection. Terminal.
//!
//! Transitions outside the arrows above are illegal and asserted
//! against ([`SessionState::can_transition`]).
//!
//! # Equivalence contract
//!
//! The legacy entry points are thin drivers over this machine, and the
//! crate pins them **bit-equal** to the frozen pre-refactor loops in
//! [`crate::reference`]: same decision log, same finalized pick, same
//! [`TuneReason`]s, same stats, across fault-free, noisy, and
//! fault-injected runs. Any behavioral change here must update the
//! reference module deliberately, with the equivalence suite as the
//! tripwire.
//!
//! [`TuneReason`]: crate::runtime::TuneReason

use crate::compiler::{CompiledKernel, Direction};
use crate::error::OrionError;
use crate::policy::{Measurement, PolicyKind, PolicyVerdict, SearchPolicy};
use crate::resilient::{
    robust_measure, should_quarantine, ResiliencePolicy, ResilienceStats, ResilientOutcome,
};
use crate::runtime::{TuneDecision, TuneOutcome};
use orion_telemetry::hist::Histogram;
use orion_telemetry::journal::{self, JournalEvent};
use serde::{Deserialize, Serialize};

/// Observable phase of a [`TuningSession`] (see the module docs for the
/// transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// Measuring the baseline version; no comparison anchor yet.
    Warmup,
    /// Walking the candidate order under the degradation test.
    Walking,
    /// Spending an extension round on a borderline verdict.
    Probing,
    /// A version has been selected; steady-state execution.
    Finalized,
    /// Every runnable version has been quarantined. Terminal.
    Quarantined,
    /// A service policy budget (deadline / wall budget / retry budget)
    /// expired; the session settled on its fail-safe selection and
    /// stopped. Terminal.
    Degraded,
}

impl SessionState {
    /// Whether the state machine may move from `self` to `to`.
    /// Self-transitions are always legal (the session re-derives its
    /// state after every event).
    #[must_use]
    pub fn can_transition(self, to: SessionState) -> bool {
        use SessionState::{Degraded, Finalized, Probing, Quarantined, Walking, Warmup};
        if self == to {
            return true;
        }
        match self {
            Warmup => matches!(to, Walking | Finalized | Quarantined | Degraded),
            Walking => matches!(to, Probing | Finalized | Quarantined | Degraded),
            Probing => matches!(to, Walking | Finalized | Quarantined | Degraded),
            Finalized => matches!(to, Quarantined | Degraded),
            Quarantined | Degraded => false,
        }
    }

    /// Whether the session has committed to a version or died — i.e.
    /// no further exploration will happen.
    #[must_use]
    pub fn is_settled(self) -> bool {
        matches!(self, SessionState::Finalized | SessionState::Quarantined | SessionState::Degraded)
    }

    /// Stable lowercase name (journal records, exporters).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SessionState::Warmup => "warmup",
            SessionState::Walking => "walking",
            SessionState::Probing => "probing",
            SessionState::Finalized => "finalized",
            SessionState::Quarantined => "quarantined",
            SessionState::Degraded => "degraded",
        }
    }
}

/// Deterministic per-session latency observations, recorded in
/// *simulated cycles* so they are bit-identical across thread
/// interleavings and worker counts (unlike wall-clock telemetry).
/// Always collected — the histograms are a few hundred machine words
/// and the service's determinism gate needs them in
/// `--no-default-features` builds too.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionObs {
    /// Cycles of every successful launch (the paper's measurement
    /// stream), exploration and steady-state alike.
    pub launch_cycles: Histogram,
    /// Simulated backoff cycles a launch chain waited before resolving
    /// (0 for launches that succeeded first try — the common case —
    /// so `count` tracks resolved chains, not just retried ones).
    pub queue_wait_cycles: Histogram,
}

/// How a [`TuningSession`] treats measurements and failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionMode {
    /// The paper's exact walk: one raw measurement per iteration, first
    /// launch error aborts ([`tune_loop`](crate::runtime::tune_loop)
    /// semantics).
    Simple,
    /// The chaos-hardened walk: retry with backoff, mean-of-k robust
    /// measurement with noise margins and borderline extension rounds,
    /// consecutive-strike quarantine, fail-safe fallback
    /// ([`resilient_tune_loop`](crate::resilient::resilient_tune_loop)
    /// semantics).
    Resilient(ResiliencePolicy),
}

/// What the session wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStep {
    /// Launch version `.0` (an index into
    /// [`CompiledKernel::versions`]) and report the result via
    /// [`TuningSession::on_launch_result`] (or
    /// [`TuningSession::on_cycles`]). Re-calling
    /// [`TuningSession::next_step`] without reporting re-issues the same
    /// request.
    Launch(usize),
    /// The iteration budget is exhausted (or the session aborted);
    /// call [`TuningSession::finish`].
    Done,
}

/// A completed session: the union of [`TuneOutcome`] and
/// [`ResilientOutcome`], plus the final state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// The selected version index.
    pub selected: usize,
    /// `(version, cycles)` per successful application iteration.
    pub iterations: Vec<(usize, u64)>,
    /// Iterations spent exploring before the selection was final.
    pub converged_after: usize,
    /// Total simulated cycles (resilient sessions include backoff).
    pub total_cycles: u64,
    /// Per-decision log, including quarantine and fallback entries.
    pub decisions: Vec<TuneDecision>,
    /// Failure accounting (all-zero for fault-free simple sessions).
    pub stats: ResilienceStats,
    /// State at [`TuningSession::finish`] time.
    pub state: SessionState,
}

impl SessionOutcome {
    /// View as the legacy fault-free outcome.
    #[must_use]
    pub fn into_tune_outcome(self) -> TuneOutcome {
        TuneOutcome {
            selected: self.selected,
            iterations: self.iterations,
            converged_after: self.converged_after,
            total_cycles: self.total_cycles,
            decisions: self.decisions,
        }
    }

    /// View as the legacy resilient outcome.
    #[must_use]
    pub fn into_resilient_outcome(self) -> ResilientOutcome {
        ResilientOutcome {
            selected: self.selected,
            iterations: self.iterations,
            converged_after: self.converged_after,
            total_cycles: self.total_cycles,
            decisions: self.decisions,
            stats: self.stats,
        }
    }
}

/// An in-flight launch request: version index plus the retry attempt
/// (resilient mode relaunches transients up to the policy budget).
#[derive(Debug, Clone, Copy)]
struct PendingLaunch {
    version: usize,
    attempt: u32,
}

/// One exploration measurement pass: the mean-of-k sample set for the
/// version under evaluation, growing by `k` on a borderline verdict.
#[derive(Debug, Clone)]
struct SamplePass {
    version: usize,
    samples: Vec<u64>,
    /// Samples wanted before the verdict; `k` initially, `2k` after a
    /// borderline extension.
    target: usize,
    /// The per-pass sample quota `k` (`ResiliencePolicy::samples`).
    k: usize,
    /// A quarantineable failure interrupted sampling.
    struck: bool,
    /// The strike quarantined the version outright.
    dead: bool,
}

/// The unified pull-based tuning state machine. See the module docs.
///
/// Drive it with the two-call loop:
///
/// ```text
/// while let SessionStep::Launch(v) = session.next_step()? {
///     session.on_launch_result(backend.launch(&ck.versions[v], ...))?;
/// }
/// let outcome = session.finish();
/// ```
#[derive(Debug, Clone)]
pub struct TuningSession<'k> {
    ck: &'k CompiledKernel,
    kernel: String,
    mode: SessionMode,
    threshold: f64,
    iterations: u32,
    /// The decision core: which candidate next, what a measurement
    /// means, when to commit ([`crate::policy`]). Defaults to
    /// [`PaperWalkPolicy`](crate::policy::PaperWalkPolicy).
    policy: Box<dyn SearchPolicy>,
    state: SessionState,
    /// Completed application iterations (`it` in the legacy loops).
    it: u32,
    iters: Vec<(usize, u64)>,
    total: u64,
    converged_after: Option<usize>,
    stats: ResilienceStats,
    /// Consecutive hard-failure strikes per version index.
    strikes: Vec<u32>,
    current: Option<PendingLaunch>,
    pass: Option<SamplePass>,
    /// Set once the session aborted with a fatal error or ran dry.
    aborted: bool,
    /// Backoff cycles accumulated by the outstanding launch chain's
    /// retries; folded into `obs.queue_wait_cycles` when it resolves.
    pending_backoff: u64,
    obs: SessionObs,
}

impl<'k> TuningSession<'k> {
    /// A session over `ck`'s candidates in the given mode, driven by
    /// the default [`PolicyKind::PaperWalk`] search policy.
    pub fn new(
        kernel: impl Into<String>,
        ck: &'k CompiledKernel,
        iterations: u32,
        threshold: f64,
        mode: SessionMode,
    ) -> Self {
        TuningSession::with_policy(kernel, ck, iterations, threshold, mode, PolicyKind::PaperWalk)
    }

    /// A session whose decision core is chosen by `search` — the
    /// per-job policy-selection entry point
    /// ([`JobPolicy::search`](crate::service::JobPolicy::search)).
    pub fn with_policy(
        kernel: impl Into<String>,
        ck: &'k CompiledKernel,
        iterations: u32,
        threshold: f64,
        mode: SessionMode,
        search: PolicyKind,
    ) -> Self {
        let policy = search.build(ck, threshold);
        let state = if matches!(policy.verdict(), PolicyVerdict::Finalized(_)) {
            SessionState::Finalized
        } else {
            SessionState::Warmup
        };
        TuningSession {
            kernel: kernel.into(),
            mode,
            threshold,
            iterations,
            state,
            it: 0,
            iters: Vec::with_capacity(iterations as usize),
            total: 0,
            converged_after: None,
            stats: ResilienceStats::default(),
            strikes: vec![0; ck.versions.len()],
            current: None,
            pass: None,
            aborted: false,
            pending_backoff: 0,
            obs: SessionObs::default(),
            policy,
            ck,
        }
    }

    /// A fault-free session ([`tune_loop`](crate::runtime::tune_loop)
    /// semantics).
    pub fn simple(ck: &'k CompiledKernel, iterations: u32, threshold: f64) -> Self {
        TuningSession::new("", ck, iterations, threshold, SessionMode::Simple)
    }

    /// A chaos-hardened session
    /// ([`resilient_tune_loop`](crate::resilient::resilient_tune_loop)
    /// semantics); `kernel` names the kernel in error context.
    pub fn resilient(
        kernel: impl Into<String>,
        ck: &'k CompiledKernel,
        iterations: u32,
        threshold: f64,
        policy: ResiliencePolicy,
    ) -> Self {
        TuningSession::new(kernel, ck, iterations, threshold, SessionMode::Resilient(policy))
    }

    /// Current observable state.
    #[must_use]
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The policy's finalized version, once the search is done.
    #[must_use]
    pub fn finalized(&self) -> Option<usize> {
        match self.policy.verdict() {
            PolicyVerdict::Finalized(v) => Some(v),
            PolicyVerdict::Exploring | PolicyVerdict::Dead => None,
        }
    }

    /// The search policy driving this session (e.g. for its
    /// [`name`](SearchPolicy::name) in reports).
    #[must_use]
    pub fn policy(&self) -> &dyn SearchPolicy {
        self.policy.as_ref()
    }

    /// The decision log so far.
    #[must_use]
    pub fn decisions(&self) -> &[TuneDecision] {
        self.policy.decisions()
    }

    /// Application iterations completed so far.
    #[must_use]
    pub fn iterations_done(&self) -> u32 {
        self.it
    }

    /// The session's deterministic latency observations so far. Read
    /// (and clone) before [`TuningSession::finish`] consumes the
    /// session; `OrionService` folds these into its per-kernel report.
    #[must_use]
    pub fn observations(&self) -> &SessionObs {
        &self.obs
    }

    /// Failure accounting so far (retries, strikes, backoff). The
    /// service reads this to enforce a [`JobPolicy`] retry budget
    /// mid-session.
    ///
    /// [`JobPolicy`]: crate::service::JobPolicy
    #[must_use]
    pub fn stats(&self) -> &ResilienceStats {
        &self.stats
    }

    /// Total simulated cycles consumed so far, *including* backoff
    /// cycles charged by resilient retries — the quantity a sim-cycle
    /// deadline meters.
    #[must_use]
    pub fn total_cycles_so_far(&self) -> u64 {
        match self.mode {
            SessionMode::Simple => self.total,
            SessionMode::Resilient(_) => self.total.saturating_add(self.stats.backoff_cycles),
        }
    }

    /// Terminate the session because a service policy budget expired
    /// (`reason` is a stable tag for the journal: `"deadline_cycles"`,
    /// `"wall_budget"`, `"retry_budget"`). The policy settles on its
    /// fail-safe selection ([`SearchPolicy::degrade_to_fallback`]): an
    /// already finalized version is kept, an unfinished search resolves
    /// to the original. Any outstanding launch request and sampling pass
    /// are dropped. Returns the settled version; `None` means every
    /// version was already quarantined and the session died as
    /// [`SessionState::Quarantined`] instead.
    pub fn degrade(&mut self, reason: &'static str) -> Option<usize> {
        if self.state.is_settled() && self.aborted {
            return self.finalized(); // already terminal
        }
        self.current = None;
        self.pass = None;
        self.aborted = true;
        let settled = self.policy.degrade_to_fallback();
        if settled.is_some() {
            if orion_telemetry::is_enabled() {
                journal::record(JournalEvent::Degraded { kernel: self.kernel.clone(), reason });
            }
            self.transition(SessionState::Degraded);
        } else {
            self.transition(SessionState::Quarantined);
        }
        settled
    }

    /// Move to `to`, enforcing the legal-transition diagram.
    fn transition(&mut self, to: SessionState) {
        debug_assert!(
            self.state.can_transition(to),
            "illegal session transition {:?} -> {to:?}",
            self.state
        );
        if self.state != to && orion_telemetry::is_enabled() {
            journal::record(JournalEvent::SessionTransition {
                kernel: self.kernel.clone(),
                from: self.state.name(),
                to: to.name(),
            });
        }
        self.state = to;
    }

    /// Re-derive the observable state from the policy + pass.
    fn refresh_state(&mut self) {
        if self.state == SessionState::Degraded {
            return; // terminal; the policy's view no longer drives state
        }
        let to = match self.policy.verdict() {
            PolicyVerdict::Dead => SessionState::Quarantined,
            PolicyVerdict::Finalized(_) => SessionState::Finalized,
            PolicyVerdict::Exploring => {
                if self.pass.as_ref().is_some_and(|p| p.target > p.k) {
                    SessionState::Probing
                } else if self.policy.trials() == 0 {
                    SessionState::Warmup
                } else {
                    SessionState::Walking
                }
            }
        };
        self.transition(to);
    }

    /// What to do next: launch a version, or stop.
    ///
    /// Idempotent while a launch is outstanding: calling `next_step`
    /// again before reporting the result re-issues the same request.
    ///
    /// # Errors
    /// [`OrionError::AllCandidatesFailed`] (with kernel context) once
    /// every version, fallbacks included, has been quarantined.
    /// Simple-mode sessions never error.
    pub fn next_step(&mut self) -> Result<SessionStep, OrionError> {
        if let Some(p) = self.current {
            return Ok(SessionStep::Launch(p.version));
        }
        if self.aborted || self.it >= self.iterations {
            return Ok(SessionStep::Done);
        }
        let Some(v) = self.policy.propose() else {
            self.refresh_state();
            return Err(OrionError::AllCandidatesFailed {
                quarantined: self.policy.quarantined_count(),
            }
            .with_context(self.kernel.clone(), Some(self.total)));
        };
        match self.mode {
            SessionMode::Simple => {
                self.current = Some(PendingLaunch { version: v, attempt: 0 });
            }
            SessionMode::Resilient(policy) => {
                if self.finalized().is_some() {
                    // Steady state: single launch per iteration.
                    self.pass = None;
                    self.converged_after.get_or_insert(self.iters.len());
                    self.current = Some(PendingLaunch { version: v, attempt: 0 });
                } else {
                    // Exploration: open (or continue) a sampling pass.
                    if self.pass.is_none() {
                        let k = policy.samples.max(1);
                        self.pass = Some(SamplePass {
                            version: v,
                            samples: Vec::with_capacity(2 * k),
                            target: k,
                            k,
                            struck: false,
                            dead: false,
                        });
                    }
                    let v = self.pass.as_ref().map_or(v, |p| p.version);
                    self.current = Some(PendingLaunch { version: v, attempt: 0 });
                }
            }
        }
        Ok(SessionStep::Launch(self.current.expect("just set").version))
    }

    /// Report the outcome of the launch requested by the last
    /// [`TuningSession::next_step`].
    ///
    /// # Errors
    /// Fatal launch errors (non-transient, non-quarantineable in
    /// resilient mode; any error in simple mode) propagate back,
    /// wrapped with kernel context in resilient mode; the session is
    /// aborted. Reporting with no launch outstanding is
    /// [`OrionError::Tuner`].
    pub fn on_launch_result(&mut self, result: Result<u64, OrionError>) -> Result<(), OrionError> {
        let Some(pending) = self.current else {
            return Err(OrionError::Tuner(
                "launch result reported with no launch outstanding".into(),
            ));
        };
        match self.mode {
            SessionMode::Simple => {
                self.current = None;
                match result {
                    Ok(cycles) => {
                        self.record_simple(pending.version, cycles);
                        Ok(())
                    }
                    Err(e) => {
                        self.aborted = true;
                        Err(e)
                    }
                }
            }
            SessionMode::Resilient(policy) => self.on_resilient_result(pending, &policy, result),
        }
    }

    /// Report a successful measurement (sugar over
    /// [`TuningSession::on_launch_result`] for drivers whose error type
    /// isn't [`OrionError`]).
    pub fn on_cycles(&mut self, cycles: u64) {
        self.on_launch_result(Ok(cycles)).expect("a successful measurement cannot fail");
    }

    /// Report a successful measurement normalized by the invocation's
    /// amount of work (§4.2; see
    /// [`DynamicTuner::record_with_work`](crate::runtime::DynamicTuner::record_with_work)).
    /// Simple-mode only — the resilient sampling pass aggregates raw
    /// cycles and has no per-sample work channel.
    ///
    /// # Errors
    /// [`OrionError::Tuner`] on zero `work`, on a resilient session, or
    /// with no launch outstanding. A rejected measurement does not
    /// consume the iteration.
    pub fn on_cycles_with_work(&mut self, cycles: u64, work: u64) -> Result<(), OrionError> {
        let Some(pending) = self.current else {
            return Err(OrionError::Tuner(
                "launch result reported with no launch outstanding".into(),
            ));
        };
        if !matches!(self.mode, SessionMode::Simple) {
            return Err(OrionError::Tuner("work normalization requires a simple session".into()));
        }
        if work == 0 {
            // Mirror the legacy tuner's rejection: the measurement is
            // refused before any state moves, so the launch stays
            // outstanding and the iteration is not consumed.
            return Err(OrionError::Tuner("work normalization factor must be positive".into()));
        }
        self.policy.observe(pending.version, Measurement::with_work(cycles, work));
        self.current = None;
        self.total += cycles;
        self.iters.push((pending.version, cycles));
        self.it += 1;
        self.obs.launch_cycles.record(cycles);
        self.obs.queue_wait_cycles.record(0);
        self.refresh_state();
        Ok(())
    }

    /// Simple-mode success path: exactly the legacy `tune_loop` body.
    fn record_simple(&mut self, version: usize, cycles: u64) {
        self.total += cycles;
        self.iters.push((version, cycles));
        self.policy.observe(version, Measurement::raw(cycles));
        self.it += 1;
        self.obs.launch_cycles.record(cycles);
        self.obs.queue_wait_cycles.record(0);
        self.refresh_state();
    }

    /// Resilient-mode result handling: retry, strike, sample, verdict.
    fn on_resilient_result(
        &mut self,
        pending: PendingLaunch,
        policy: &ResiliencePolicy,
        result: Result<u64, OrionError>,
    ) -> Result<(), OrionError> {
        self.stats.launches += 1;
        match result {
            Ok(cycles) => {
                self.current = None;
                self.strikes[pending.version] = 0;
                self.total = self.total.saturating_add(cycles);
                self.iters.push((pending.version, cycles));
                self.it += 1;
                self.obs.launch_cycles.record(cycles);
                self.obs.queue_wait_cycles.record(self.pending_backoff);
                self.pending_backoff = 0;
                if let Some(mut pass) = self.pass.take() {
                    pass.samples.push(cycles);
                    self.advance_pass(pass, policy);
                }
                self.refresh_state();
                Ok(())
            }
            Err(e) if e.is_transient() && pending.attempt < policy.max_retries => {
                // Bounded retry with exponential backoff, charged in
                // simulated cycles; the same launch is re-issued.
                self.stats.failed_launches += 1;
                self.stats.retries += 1;
                let backoff = policy.backoff_base_cycles << pending.attempt.min(20);
                self.stats.backoff_cycles = self.stats.backoff_cycles.saturating_add(backoff);
                self.pending_backoff = self.pending_backoff.saturating_add(backoff);
                if orion_telemetry::is_enabled() {
                    orion_telemetry::counter("resilience", "retry", 1);
                    journal::record(JournalEvent::Retry {
                        kernel: self.kernel.clone(),
                        version: pending.version,
                        attempt: pending.attempt + 1,
                        backoff_cycles: backoff,
                    });
                }
                self.current =
                    Some(PendingLaunch { version: pending.version, attempt: pending.attempt + 1 });
                Ok(())
            }
            Err(e) if should_quarantine(&e) => {
                self.stats.failed_launches += 1;
                self.current = None;
                // The chain resolved (in failure): its waited backoff is
                // still queue time.
                self.obs.queue_wait_cycles.record(self.pending_backoff);
                self.pending_backoff = 0;
                if orion_telemetry::is_enabled() {
                    if let OrionError::Sim(orion_gpusim::exec::SimError::Watchdog { budget }) =
                        e.root_cause()
                    {
                        journal::record(JournalEvent::Watchdog {
                            kernel: self.kernel.clone(),
                            budget_cycles: *budget,
                        });
                    }
                }
                let dead = self.strike(pending.version, policy);
                if let Some(mut pass) = self.pass.take() {
                    // A strike ends the sampling pass; the partial
                    // measurement is discarded (the version will be
                    // re-sampled cleanly if it survived).
                    pass.struck = true;
                    pass.dead = dead;
                    self.settle_pass(pass, policy);
                }
                self.refresh_state();
                Ok(())
            }
            Err(e) => {
                self.stats.failed_launches += 1;
                self.current = None;
                self.obs.queue_wait_cycles.record(self.pending_backoff);
                self.pending_backoff = 0;
                self.aborted = true;
                Err(e.with_context(self.kernel.clone(), Some(self.total)))
            }
        }
    }

    /// Charge a hard failure; quarantine on the consecutive-strike
    /// budget. Returns whether the version died.
    fn strike(&mut self, version: usize, policy: &ResiliencePolicy) -> bool {
        self.stats.strikes += 1;
        if orion_telemetry::is_enabled() {
            orion_telemetry::counter("resilience", "strike", 1);
        }
        self.strikes[version] += 1;
        if self.strikes[version] >= policy.quarantine_strikes.max(1) {
            self.policy.quarantine(version);
            if orion_telemetry::is_enabled() {
                journal::record(JournalEvent::Quarantine {
                    kernel: self.kernel.clone(),
                    version,
                    strikes: self.strikes[version],
                });
                // The policy logs a FellBack decision when the dead
                // version was the finalized one; mirror it as a typed
                // journal record naming the replacement.
                if let Some(d) = self
                    .policy
                    .decisions()
                    .last()
                    .filter(|d| d.reason == crate::runtime::TuneReason::FellBack)
                {
                    if let Some(to) = d.finalized {
                        journal::record(JournalEvent::Fallback {
                            kernel: self.kernel.clone(),
                            version: to,
                        });
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// After a successful sample: keep sampling, extend on a borderline
    /// verdict, or settle the pass.
    fn advance_pass(&mut self, pass: SamplePass, policy: &ResiliencePolicy) {
        // Mirrors the legacy inner loop's exit conditions exactly.
        if pass.samples.len() < pass.target && self.it < self.iterations {
            self.pass = Some(pass); // keep sampling
            return;
        }
        if self.it >= self.iterations || pass.samples.len() < pass.target || pass.target > pass.k {
            self.settle_pass(pass, policy);
            return;
        }
        // Full first-round measurement in hand — is the stop verdict
        // within half a noise margin of the decision boundary? Then a
        // jitter swing could flip it; double the sample set once.
        let mut pass = pass;
        let m = robust_measure(&mut pass.samples, policy.outlier_factor);
        let margin = (m.rel_spread * policy.noise_margin_factor)
            .clamp(0.0, policy.noise_margin_cap.max(0.0));
        let borderline = margin > 0.0
            && self.policy.probe_slowdown(m.cycles).is_some_and(|slow| {
                let boundary = match self.ck.direction {
                    Direction::Increasing => margin,
                    Direction::Decreasing => self.threshold.max(margin),
                };
                (slow - boundary).abs() <= margin * 0.5
            });
        if borderline {
            pass.target += pass.k;
            self.pass = Some(pass);
        } else {
            self.settle_pass(pass, policy);
        }
    }

    /// Close a pass: record a full mean-of-k, or whatever we have if
    /// the iteration budget ran out; a strike-interrupted partial with
    /// budget remaining is discarded instead.
    fn settle_pass(&mut self, mut pass: SamplePass, policy: &ResiliencePolicy) {
        if !pass.dead && !pass.samples.is_empty() && (!pass.struck || self.it >= self.iterations) {
            let m = robust_measure(&mut pass.samples, policy.outlier_factor);
            let margin = (m.rel_spread * policy.noise_margin_factor)
                .clamp(0.0, policy.noise_margin_cap.max(0.0));
            self.policy.observe(pass.version, Measurement::noisy(m.cycles, margin));
        }
        self.pass = None;
    }

    /// Consume the session into its outcome. Callable at any point; the
    /// legacy drivers call it after [`SessionStep::Done`].
    #[must_use]
    pub fn finish(mut self) -> SessionOutcome {
        use crate::runtime::TuneReason;
        let selected = self.finalized().unwrap_or_else(|| self.policy.select());
        let converged_after = match self.mode {
            SessionMode::Simple => self.policy.trials(),
            SessionMode::Resilient(_) => self.converged_after.unwrap_or(self.iters.len()),
        };
        let decisions = self.policy.into_decisions();
        // Reconcile quarantine/fallback stats with the decision log, as
        // the legacy resilient loop did.
        self.stats.quarantined =
            decisions.iter().filter(|d| d.reason == TuneReason::Quarantined).count() as u64;
        self.stats.fellback =
            decisions.iter().filter(|d| d.reason == TuneReason::FellBack).count() as u64;
        let total_cycles = match self.mode {
            SessionMode::Simple => self.total,
            SessionMode::Resilient(_) => self.total.saturating_add(self.stats.backoff_cycles),
        };
        SessionOutcome {
            selected,
            iterations: self.iters,
            converged_after,
            total_cycles,
            decisions,
            stats: self.stats,
            state: self.state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompiledKernel, Direction, KernelVersion};
    use orion_alloc::realize::AllocReport;
    use orion_gpusim::exec::SimError;
    use orion_kir::mir::MModule;
    use orion_kir::types::FuncId;

    fn fake_version(warps: u32, fail_safe: bool) -> KernelVersion {
        KernelVersion {
            machine: MModule {
                funcs: vec![],
                entry: FuncId(0),
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                user_smem_bytes: 0,
                static_stack_moves: 0,
            },
            target_warps: warps,
            achieved_warps: warps,
            occupancy: f64::from(warps) / 48.0,
            extra_smem: 0,
            report: AllocReport {
                kernel_max_live: 0,
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                static_moves: 0,
                per_func: vec![],
            },
            fail_safe,
            label: format!("occ={warps}"),
        }
    }

    fn fake_compiled(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
        CompiledKernel {
            versions: warp_levels.iter().map(|&w| fake_version(w, false)).collect(),
            direction,
            original: 0,
            max_live: 40,
            tuning_order: (0..warp_levels.len()).collect(),
        }
    }

    #[test]
    fn simple_session_walks_and_settles() {
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let times = [100u64, 80, 90, 70];
        let mut s = TuningSession::simple(&ck, 10, 0.02);
        assert_eq!(s.state(), SessionState::Warmup);
        let mut seen_walking = false;
        while let SessionStep::Launch(v) = s.next_step().unwrap() {
            s.on_cycles(times[v]);
            seen_walking |= s.state() == SessionState::Walking;
        }
        assert!(seen_walking);
        assert_eq!(s.state(), SessionState::Finalized);
        let out = s.finish();
        assert_eq!(out.selected, 1);
        assert_eq!(out.converged_after, 3);
        assert_eq!(out.iterations.len(), 10);
    }

    #[test]
    fn next_is_idempotent_while_a_launch_is_outstanding() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let mut s = TuningSession::simple(&ck, 4, 0.02);
        let a = s.next_step().unwrap();
        let b = s.next_step().unwrap();
        assert_eq!(a, b);
        assert!(matches!(a, SessionStep::Launch(0)));
    }

    #[test]
    fn result_without_outstanding_launch_is_an_error() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let mut s = TuningSession::simple(&ck, 4, 0.02);
        let err = s.on_launch_result(Ok(10)).unwrap_err();
        assert!(matches!(err, OrionError::Tuner(_)));
    }

    #[test]
    fn zero_iterations_finish_immediately() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let mut s = TuningSession::simple(&ck, 0, 0.02);
        assert_eq!(s.next_step().unwrap(), SessionStep::Done);
        let out = s.finish();
        assert_eq!(out.iterations.len(), 0);
        assert_eq!(out.converged_after, 0);
        assert_eq!(out.total_cycles, 0);
        // Unfinalized walk still names a deterministic selection.
        assert_eq!(out.selected, 0);
    }

    #[test]
    fn single_candidate_starts_finalized() {
        let ck = fake_compiled(&[48], Direction::Decreasing);
        let mut s = TuningSession::simple(&ck, 3, 0.02);
        assert_eq!(s.state(), SessionState::Finalized);
        while let SessionStep::Launch(v) = s.next_step().unwrap() {
            assert_eq!(v, 0);
            s.on_cycles(55);
        }
        let out = s.finish();
        assert_eq!(out.selected, 0);
        assert_eq!(out.converged_after, 0);
        assert_eq!(out.total_cycles, 165);
    }

    #[test]
    fn simple_session_aborts_on_first_error() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let mut s = TuningSession::simple(&ck, 4, 0.02);
        let SessionStep::Launch(_) = s.next_step().unwrap() else { panic!() };
        let err = s.on_launch_result(Err(SimError::Deadlock.into())).unwrap_err();
        assert!(matches!(err.root_cause(), OrionError::Sim(SimError::Deadlock)));
        assert_eq!(s.next_step().unwrap(), SessionStep::Done);
    }

    #[test]
    fn resilient_session_probes_borderline_verdicts() {
        // Decreasing walk: the second version sits right at the 2%
        // boundary with jittery samples, forcing an extension round.
        let ck = fake_compiled(&[48, 36, 24], Direction::Decreasing);
        let policy = ResiliencePolicy { samples: 3, ..ResiliencePolicy::default() };
        let mut s = TuningSession::resilient("k", &ck, 30, 0.02, policy);
        let mut n1 = 0u32;
        let mut saw_probing = false;
        while let SessionStep::Launch(v) = s.next_step().unwrap() {
            let c = match v {
                0 => 1000,
                1 => {
                    n1 += 1;
                    // Mean 1050 (5% over best), spread ~5.7% → margin
                    // ~4.3%; the verdict lands within half a margin of
                    // the max(threshold, margin) boundary.
                    [1020u64, 1050, 1080][(n1 as usize - 1) % 3]
                }
                _ => 2000,
            };
            s.on_cycles(c);
            saw_probing |= s.state() == SessionState::Probing;
        }
        assert!(saw_probing, "borderline verdict must enter Probing");
        let out = s.finish();
        assert!(out.state.is_settled());
    }

    #[test]
    fn quarantining_everything_is_terminal_with_coherent_log() {
        use crate::runtime::TuneReason;
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let policy = ResiliencePolicy::default();
        let mut s = TuningSession::resilient("dead", &ck, 12, 0.02, policy);
        let err = loop {
            match s.next_step() {
                Ok(SessionStep::Launch(_)) => {
                    s.on_launch_result(Err(SimError::Watchdog { budget: 9 }.into()))
                        .expect("quarantineable failures are absorbed");
                }
                Ok(SessionStep::Done) => panic!("session must die, not drain"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err.root_cause(), OrionError::AllCandidatesFailed { quarantined: 2 }));
        assert!(err.to_string().contains("dead"));
        assert_eq!(s.state(), SessionState::Quarantined);
        let out = s.finish();
        assert_eq!(out.state, SessionState::Quarantined);
        assert_eq!(
            out.decisions.iter().filter(|d| d.reason == TuneReason::Quarantined).count(),
            2,
            "one quarantine decision per dead version: {:?}",
            out.decisions
        );
        assert_eq!(out.stats.quarantined, 2);
        assert_eq!(out.iterations.len(), 0);
    }

    #[test]
    fn illegal_transitions_are_rejected_by_the_table() {
        use SessionState::{Degraded, Finalized, Probing, Quarantined, Walking, Warmup};
        assert!(Warmup.can_transition(Walking));
        assert!(Warmup.can_transition(Finalized));
        assert!(!Warmup.can_transition(Probing));
        assert!(Walking.can_transition(Probing));
        assert!(Probing.can_transition(Walking));
        assert!(!Finalized.can_transition(Walking));
        assert!(Finalized.can_transition(Quarantined));
        assert!(!Quarantined.can_transition(Warmup));
        assert!(Quarantined.can_transition(Quarantined));
        assert!(Warmup.can_transition(Degraded));
        assert!(Walking.can_transition(Degraded));
        assert!(Finalized.can_transition(Degraded));
        assert!(!Degraded.can_transition(Walking));
        assert!(!Degraded.can_transition(Quarantined));
        assert!(Degraded.is_settled());
    }

    #[test]
    fn degrade_mid_walk_settles_on_original_and_stops() {
        let ck = fake_compiled(&[8, 16, 32, 48], Direction::Increasing);
        let mut s = TuningSession::simple(&ck, 10, 0.02);
        let SessionStep::Launch(v) = s.next_step().unwrap() else { panic!() };
        s.on_cycles(100 + v as u64);
        assert_eq!(s.state(), SessionState::Walking);
        assert_eq!(s.total_cycles_so_far(), 100);
        let settled = s.degrade("deadline_cycles");
        assert_eq!(settled, Some(0), "unfinished walk degrades to the original");
        assert_eq!(s.state(), SessionState::Degraded);
        assert_eq!(s.next_step().unwrap(), SessionStep::Done, "degraded sessions stop");
        let out = s.finish();
        assert_eq!(out.state, SessionState::Degraded);
        assert_eq!(out.selected, 0);
        assert_eq!(
            out.decisions.last().unwrap().reason,
            crate::runtime::TuneReason::Degraded,
            "the log explains the cut: {:?}",
            out.decisions
        );
    }

    #[test]
    fn degrade_keeps_a_finalized_selection() {
        let ck = fake_compiled(&[8, 16, 32], Direction::Increasing);
        let times = [100u64, 80, 90];
        let mut s = TuningSession::simple(&ck, 10, 0.02);
        while s.state() != SessionState::Finalized {
            let SessionStep::Launch(v) = s.next_step().unwrap() else { panic!() };
            s.on_cycles(times[v]);
        }
        assert_eq!(s.degrade("wall_budget"), Some(1), "finalized pick survives the cut");
        assert_eq!(s.state(), SessionState::Degraded);
    }

    #[test]
    fn degrade_with_everything_quarantined_dies_quarantined() {
        let ck = fake_compiled(&[8, 16], Direction::Increasing);
        let policy = ResiliencePolicy { quarantine_strikes: 1, ..ResiliencePolicy::default() };
        let mut s = TuningSession::resilient("k", &ck, 8, 0.02, policy);
        while let Ok(SessionStep::Launch(_)) = s.next_step() {
            s.on_launch_result(Err(SimError::Watchdog { budget: 9 }.into())).unwrap();
        }
        assert_eq!(s.degrade("retry_budget"), None, "no survivor to degrade onto");
        assert_eq!(s.state(), SessionState::Quarantined);
    }
}
