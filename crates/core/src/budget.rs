//! Occupancy targets → per-thread on-chip slot budgets.
//!
//! Equation 1 inverted: a target number of resident warps implies a
//! register budget per thread (through the occupancy calculator's
//! rounding) and a private shared-memory slot budget (what is left of
//! the SM's shared memory after the user's arrays, divided over the
//! resident threads).

use orion_alloc::realize::SlotBudget;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::occupancy::{max_regs_for_warps, occupancy, KernelResources};

/// Cap on allocator-added private shared-memory slots per thread; more
/// than this never helps (the compressible stack rarely exceeds the
/// register file) and keeps shared memory available for occupancy.
pub const MAX_PRIVATE_SMEM_SLOTS: u16 = 32;

/// The slot budget that realizes `target_warps` resident warps for a
/// kernel with `user_smem` bytes of declared shared memory per block,
/// or `None` when the target is unachievable.
pub fn budget_for_warps(
    dev: &DeviceSpec,
    block: u32,
    user_smem: u32,
    target_warps: u32,
) -> Option<SlotBudget> {
    let warps_per_block = block.div_ceil(dev.warp_size);
    let blocks = (target_warps / warps_per_block.max(1)).max(1);
    // Shared memory left per thread at this residency.
    let smem_per_block_budget = dev.smem_per_sm() / blocks;
    if smem_per_block_budget < user_smem {
        return None;
    }
    let spare = smem_per_block_budget - user_smem;
    let smem_slots = ((spare / 4) / block.max(1)).min(u32::from(MAX_PRIVATE_SMEM_SLOTS)) as u16;
    // Registers: the most per thread that still sustains the target,
    // accounting for the smem we intend to use.
    let smem_used = user_smem + u32::from(smem_slots) * 4 * block;
    let reg_slots = max_regs_for_warps(dev, target_warps, block, smem_used)?;
    Some(SlotBudget { reg_slots, smem_slots })
}

/// Occupancy actually achieved by a binary compiled at `budget` (the
/// budget is an upper bound; the binary may use fewer registers).
pub fn occupancy_of_budget(
    dev: &DeviceSpec,
    block: u32,
    user_smem: u32,
    regs_used: u16,
    smem_slots_used: u16,
) -> f64 {
    occupancy(
        dev,
        &KernelResources {
            regs_per_thread: regs_used,
            smem_per_block: user_smem + u32::from(smem_slots_used) * 4 * block,
            block_size: block,
        },
    )
    .occupancy
}

/// Extra per-block shared-memory padding that caps residency at
/// `target_warps` for a binary with the given resources — the paper's
/// recompilation-free downward-tuning mechanism. Returns `None` if the
/// binary already runs at or below the target.
pub fn smem_padding_for_warps(
    dev: &DeviceSpec,
    res: &KernelResources,
    target_warps: u32,
) -> Option<u32> {
    let cur = occupancy(dev, res);
    if cur.active_warps <= target_warps {
        return None;
    }
    let warps_per_block = res.block_size.div_ceil(dev.warp_size);
    let target_blocks = (target_warps / warps_per_block.max(1)).max(1);
    // Need floor(smem_per_sm / (smem_per_block + pad)) <= target_blocks,
    // i.e. per-block demand strictly above smem_per_sm / (target + 1).
    let needed_per_block = dev.smem_per_sm() / (target_blocks + 1) + 1;
    Some(needed_per_block.saturating_sub(res.smem_per_block).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_tracks_target() {
        let dev = DeviceSpec::gtx680();
        // Full occupancy: 32 regs/thread on GTX680.
        let b = budget_for_warps(&dev, 256, 0, 64).unwrap();
        assert_eq!(b.reg_slots, 32);
        assert!(b.smem_slots > 0);
        // Half occupancy allows the hardware max.
        let b = budget_for_warps(&dev, 256, 0, 32).unwrap();
        assert_eq!(b.reg_slots, 63);
    }

    #[test]
    fn user_smem_reduces_slot_budget() {
        let dev = DeviceSpec::c2075();
        let without = budget_for_warps(&dev, 256, 0, 24).unwrap();
        let with = budget_for_warps(&dev, 256, 16 * 1024, 24).unwrap();
        assert!(with.smem_slots < without.smem_slots);
    }

    #[test]
    fn impossible_targets_rejected() {
        let dev = DeviceSpec::c2075();
        assert!(budget_for_warps(&dev, 256, 0, 49).is_none(), "over hw max");
        // User smem so large the blocks needed can never fit.
        assert!(budget_for_warps(&dev, 256, 47 * 1024, 48).is_none());
    }

    #[test]
    fn padding_caps_occupancy() {
        let dev = DeviceSpec::c2075();
        let res = KernelResources { regs_per_thread: 16, smem_per_block: 0, block_size: 192 };
        let full = occupancy(&dev, &res);
        assert_eq!(full.active_warps, 48);
        let pad = smem_padding_for_warps(&dev, &res, 24).unwrap();
        let padded = KernelResources { smem_per_block: pad, ..res };
        let after = occupancy(&dev, &padded);
        assert!(after.active_warps <= 24, "{}", after.active_warps);
        assert!(after.active_warps >= 18, "not too far below target");
    }

    #[test]
    fn padding_never_admits_extra_blocks() {
        // Exhaustive check of the rounding: the padded footprint must
        // cap residency at (or below) the target for every combination.
        let dev = DeviceSpec::c2075();
        for target_blocks in 1..8u32 {
            for user in [0u32, 512, 4096, 12288] {
                let res =
                    KernelResources { regs_per_thread: 8, smem_per_block: user, block_size: 192 };
                let target = target_blocks * 6;
                if let Some(pad) = smem_padding_for_warps(&dev, &res, target) {
                    let after =
                        occupancy(&dev, &KernelResources { smem_per_block: user + pad, ..res });
                    assert!(
                        after.active_blocks <= target_blocks,
                        "target {target_blocks} user {user}: got {}",
                        after.active_blocks
                    );
                }
            }
        }
    }

    #[test]
    fn padding_none_when_already_below() {
        let dev = DeviceSpec::c2075();
        let res = KernelResources { regs_per_thread: 63, smem_per_block: 0, block_size: 256 };
        let cur = occupancy(&dev, &res).active_warps;
        assert!(smem_padding_for_warps(&dev, &res, cur).is_none());
    }
}
