//! Pluggable search policies over a compiled kernel's candidates.
//!
//! PR 5 unified the three runtime walks onto one state machine
//! ([`TuningSession`](crate::session::TuningSession)); this module pulls
//! the *decision core* out of that machine behind the [`SearchPolicy`]
//! trait, so the Figure 9 walk becomes one strategy among several
//! instead of the only one. The session keeps everything operational —
//! retries, robust measurement, strikes, deadlines, degraded fallback —
//! and delegates only the questions "which candidate next?", "what did
//! this measurement mean?", and "are we done?" to the policy.
//!
//! Two policies ship:
//!
//! * [`PaperWalkPolicy`] — the paper's Figure 9 walk, a delegating
//!   wrapper over the untouched [`DynamicTuner`]. It is the default
//!   everywhere and is pinned **bit-equal** to the frozen
//!   [`crate::reference`] oracle by the equivalence suites: the refactor
//!   is invisible unless a non-default policy is requested.
//! * [`BanditPolicy`] — a seeded, deterministic UCB search intended for
//!   wider candidate spaces ([`CandidateSpace`]): arms are pre-pruned by
//!   a cheap analytic performance bound derived from the compile-probe
//!   occupancy curves ([`analytic_bound`]), so no simulated launch is
//!   spent on dominated arms; the survivors are measured once each in
//!   ascending-bound order and then refined until no arm's optimistic
//!   estimate can beat the incumbent.
//!
//! # Determinism rules
//!
//! Policies must be deterministic functions of (construction inputs,
//! observation sequence): the service's bit-equality gates run the same
//! batch at several worker counts and compare outcomes bitwise. The
//! bandit's only randomness is a seeded xorshift used to break exact
//! mean ties, so the same seed always yields the same arm sequence.
//!
//! [`CandidateSpace`]: crate::version::CandidateSpace

use crate::compiler::{CompiledKernel, KernelVersion};
use crate::runtime::{DynamicTuner, TuneDecision, TuneReason};
use orion_telemetry::journal::{self, JournalEvent};
use orion_telemetry::registry;
use serde::{Deserialize, Serialize};

/// One successful measurement reported to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Raw cycles of the invocation.
    pub cycles: u64,
    /// §4.2 work normalization factor (split tuning); `None` compares
    /// raw cycles. Validated positive by the session before it reaches
    /// the policy.
    pub work: Option<u64>,
    /// Relative noise margin from robust measurement (resilient mode);
    /// `None` is a noise-free single sample.
    pub noise_margin: Option<f64>,
}

impl Measurement {
    /// A plain noise-free measurement.
    #[must_use]
    pub fn raw(cycles: u64) -> Self {
        Measurement { cycles, work: None, noise_margin: None }
    }

    /// A measurement normalized by the invocation's amount of work.
    #[must_use]
    pub fn with_work(cycles: u64, work: u64) -> Self {
        Measurement { cycles, work: Some(work), noise_margin: None }
    }

    /// A robust mean with its observed relative noise margin.
    #[must_use]
    pub fn noisy(cycles: u64, noise_margin: f64) -> Self {
        Measurement { cycles, work: None, noise_margin: Some(noise_margin) }
    }
}

/// Where a policy stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Still measuring candidates.
    Exploring,
    /// Committed to candidate `.0`; further proposals are steady-state.
    Finalized(usize),
    /// Every candidate (fallbacks included) is gone. Terminal.
    Dead,
}

/// The decision core of a tuning session, pulled out of
/// [`TuningSession`](crate::session::TuningSession). Mirrors the
/// session's own pull shape: [`SearchPolicy::propose`] names the next
/// candidate, the caller measures it however it likes, and
/// [`SearchPolicy::observe`] feeds the result back.
///
/// Candidate ids are indices into whatever candidate list the policy
/// was built over — [`CompiledKernel::versions`] for session-driven
/// policies, a [`CandidateSpace`](crate::version::CandidateSpace) arm
/// list for space-driven search.
pub trait SearchPolicy: std::fmt::Debug + Send {
    /// The candidate to measure (or run, once finalized) next. `None`
    /// once every candidate has been quarantined — the policy is dead.
    fn propose(&self) -> Option<usize>;

    /// Feed back a successful measurement of `candidate` (always the
    /// most recent [`SearchPolicy::propose`] answer).
    fn observe(&mut self, candidate: usize, m: Measurement);

    /// Where the policy stands.
    fn verdict(&self) -> PolicyVerdict;

    /// Total selection for reports: the finalized candidate, else the
    /// best current guess. Must never panic, even with everything
    /// quarantined.
    fn select(&self) -> usize;

    /// The relative slowdown `cycles` would register against the
    /// policy's current comparison anchor, when that question is
    /// meaningful mid-walk (the resilient borderline probe). `None`
    /// when there is no anchor — the caller skips the borderline
    /// extension.
    fn probe_slowdown(&self, cycles: u64) -> Option<f64>;

    /// Remove a candidate after launch failures; the policy continues
    /// over the survivors (falling back if the finalized candidate
    /// died).
    fn quarantine(&mut self, candidate: usize);

    /// Settle immediately on the fail-safe selection because a service
    /// budget expired. Returns the settled candidate, `None` when every
    /// candidate is quarantined.
    fn degrade_to_fallback(&mut self) -> Option<usize>;

    /// Whether `candidate` has been quarantined.
    fn is_quarantined(&self, candidate: usize) -> bool;

    /// How many candidates have been quarantined so far.
    fn quarantined_count(&self) -> usize;

    /// Exploration measurements consumed so far.
    fn trials(&self) -> usize;

    /// The decision log so far.
    fn decisions(&self) -> &[TuneDecision];

    /// Consume the policy, keeping its decision log.
    fn into_decisions(self: Box<Self>) -> Vec<TuneDecision>;

    /// Stable lowercase policy name (journal records, bench artifacts).
    fn name(&self) -> &'static str;

    /// Clone into a new box ([`TuningSession`] is `Clone`).
    ///
    /// [`TuningSession`]: crate::session::TuningSession
    fn clone_box(&self) -> Box<dyn SearchPolicy>;
}

impl Clone for Box<dyn SearchPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Which [`SearchPolicy`] a session (or service job) runs.
///
/// `Copy + Eq` on purpose: it rides inside
/// [`JobPolicy`](crate::service::JobPolicy) and
/// [`ServiceConfig`](crate::service::ServiceConfig), which tests compare
/// wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's Figure 9 walk (the default).
    #[default]
    PaperWalk,
    /// Bound-pruned deterministic UCB.
    Bandit(BanditConfig),
}

impl PolicyKind {
    /// Stable lowercase name (reports, bench artifacts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::PaperWalk => "paper_walk",
            PolicyKind::Bandit(_) => "bandit",
        }
    }

    /// Build the policy over a compiled kernel's candidates.
    #[must_use]
    pub fn build(self, ck: &CompiledKernel, threshold: f64) -> Box<dyn SearchPolicy> {
        match self {
            PolicyKind::PaperWalk => Box::new(PaperWalkPolicy::new(ck, threshold)),
            PolicyKind::Bandit(cfg) => Box::new(BanditPolicy::over_kernel(ck, cfg)),
        }
    }
}

/// The paper's Figure 9 walk as a [`SearchPolicy`]: a delegating
/// wrapper over the untouched [`DynamicTuner`], so its decision
/// sequence is *definitionally* the pre-refactor one. The equivalence
/// suites pin it bit-equal to the frozen [`crate::reference`] oracle.
#[derive(Debug, Clone)]
pub struct PaperWalkPolicy {
    tuner: DynamicTuner,
}

impl PaperWalkPolicy {
    /// The walk over `ck`'s tuning order at the paper's threshold.
    #[must_use]
    pub fn new(ck: &CompiledKernel, threshold: f64) -> Self {
        PaperWalkPolicy { tuner: DynamicTuner::new(ck, threshold) }
    }
}

impl SearchPolicy for PaperWalkPolicy {
    fn propose(&self) -> Option<usize> {
        if self.tuner.all_quarantined() {
            None
        } else {
            Some(self.tuner.select())
        }
    }

    fn observe(&mut self, candidate: usize, m: Measurement) {
        debug_assert_eq!(candidate, self.tuner.select(), "walk measurements arrive in order");
        if orion_telemetry::is_enabled() && self.tuner.finalized().is_none() {
            search_metrics().launches.inc();
        }
        match (m.work, m.noise_margin) {
            // The session validates `work > 0` before the measurement
            // reaches the policy, preserving the tuner's own contract.
            (Some(work), _) => self
                .tuner
                .record_with_work(m.cycles, work)
                .expect("session rejects zero work before observe"),
            (None, Some(margin)) => self.tuner.record_noisy(m.cycles, margin),
            (None, None) => self.tuner.record(m.cycles),
        }
    }

    fn verdict(&self) -> PolicyVerdict {
        if self.tuner.all_quarantined() {
            PolicyVerdict::Dead
        } else if let Some(v) = self.tuner.finalized() {
            PolicyVerdict::Finalized(v)
        } else {
            PolicyVerdict::Exploring
        }
    }

    fn select(&self) -> usize {
        self.tuner.select()
    }

    fn probe_slowdown(&self, cycles: u64) -> Option<f64> {
        self.tuner.probe_slowdown(cycles)
    }

    fn quarantine(&mut self, candidate: usize) {
        self.tuner.quarantine(candidate);
    }

    fn degrade_to_fallback(&mut self) -> Option<usize> {
        self.tuner.degrade_to_fallback()
    }

    fn is_quarantined(&self, candidate: usize) -> bool {
        self.tuner.is_quarantined(candidate)
    }

    fn quarantined_count(&self) -> usize {
        self.tuner.quarantined_count()
    }

    fn trials(&self) -> usize {
        self.tuner.trials()
    }

    fn decisions(&self) -> &[TuneDecision] {
        self.tuner.decisions()
    }

    fn into_decisions(self: Box<Self>) -> Vec<TuneDecision> {
        self.tuner.into_decisions()
    }

    fn name(&self) -> &'static str {
        "paper_walk"
    }

    fn clone_box(&self) -> Box<dyn SearchPolicy> {
        Box::new(self.clone())
    }
}

/// Knobs of the [`BanditPolicy`]. All-integer so the config stays
/// `Copy + Eq` inside [`PolicyKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BanditConfig {
    /// Seed of the deterministic tie-break stream. Same seed ⇒ same arm
    /// sequence, bit for bit.
    pub seed: u64,
    /// UCB exploration constant × 1000 (relative to the incumbent
    /// mean). 0 disables refinement pulls entirely.
    pub exploration_milli: u32,
    /// Pre-pruning slack, percent: arms whose analytic bound exceeds
    /// the best bound by more than this are dropped without ever being
    /// launched. `u32::MAX` disables pruning.
    pub prune_slack_pct: u32,
    /// Extra confirmation pulls of the incumbent before finalizing.
    pub confirm_pulls: u32,
    /// Hard cap on exploration pulls; 0 derives `4 × arms`.
    pub max_pulls: u32,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            seed: 0x0B_AD_1D_EA,
            exploration_milli: 500,
            prune_slack_pct: 30,
            confirm_pulls: 0,
            max_pulls: 0,
        }
    }
}

/// Launch-shape context for [`analytic_bound`]: how many blocks one SM
/// must serve, and how many warps one block occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundCtx {
    /// Threads per block of the launch the arms compete for.
    pub block: u32,
    /// Blocks each SM serves (`ceil(grid / num_sms)`); callers without
    /// a device in hand may pass the whole grid — conservative, the
    /// *relative* ordering across arms is what pruning consumes.
    pub blocks_per_sm: u32,
    /// The device's warp width (32 on every modeled device).
    pub warp_size: u32,
}

impl BoundCtx {
    /// Context for a launch on a known device shape.
    #[must_use]
    pub fn new(block: u32, grid: u32, num_sms: u32, warp_size: u32) -> Self {
        BoundCtx {
            block: block.max(1),
            blocks_per_sm: grid.div_ceil(num_sms.max(1)).max(1),
            warp_size: warp_size.max(1),
        }
    }
}

/// Weight of one compressible-stack move (spill/restore traffic)
/// relative to a plain instruction in the analytic bound. Spill moves
/// touch the on-chip private region and serialize against it, so they
/// cost more than an ALU op but far less than a DRAM round trip.
const SPILL_MOVE_WEIGHT: u64 = 4;

/// Cheap analytic lower-ish bound on a version's per-iteration cost, in
/// abstract issue slots — the pre-pruning signal of [`BanditPolicy`].
///
/// Derivation (from the compile-probe occupancy curve and the machine
/// module, no simulation):
///
/// * Each resident block retires the version's static instruction
///   stream once per grid block it serves; spill traffic (the
///   allocator's compressible-stack moves, which grow as occupancy
///   tuning squeezes registers) is weighted [`SPILL_MOVE_WEIGHT`]×.
/// * A version resident at `b` blocks/SM serves `ceil(blocks_per_sm /
///   b)` sequential *rounds* — the same quantization the occupancy
///   calculator applies. This is what makes the bound non-monotone in
///   occupancy: once an arm's residency already covers the grid,
///   raising occupancy further buys nothing, while its spill cost still
///   grows.
///
/// The bound intentionally ignores cache behavior and latency hiding;
/// [`BanditConfig::prune_slack_pct`] absorbs the model error, and the
/// pruning-soundness property suite is the empirical tripwire.
#[must_use]
pub fn analytic_bound(v: &KernelVersion, ctx: &BoundCtx) -> u64 {
    let insts: u64 = v.machine.funcs.iter().map(|f| f.num_insts() as u64).sum();
    let weighted = insts + SPILL_MOVE_WEIGHT * u64::from(v.machine.static_stack_moves);
    let warps_per_block = ctx.block.div_ceil(ctx.warp_size).max(1);
    let active_blocks = (v.achieved_warps / warps_per_block).max(1);
    let rounds = u64::from(ctx.blocks_per_sm.div_ceil(active_blocks).max(1));
    rounds * weighted.max(1)
}

/// Per-arm bandit state.
#[derive(Debug, Clone)]
struct Arm {
    bound: u64,
    pulls: u32,
    /// Sum of normalized cycles over `pulls`.
    total: u128,
    quarantined: bool,
    pruned: bool,
}

impl Arm {
    fn mean(&self) -> Option<u64> {
        if self.pulls == 0 {
            None
        } else {
            u64::try_from(self.total / u128::from(self.pulls)).ok()
        }
    }

    fn alive(&self) -> bool {
        !self.quarantined && !self.pruned
    }
}

/// Seeded, deterministic UCB over a candidate set, with arms pre-pruned
/// by [`analytic_bound`]. See the module docs for the search schedule
/// and determinism rules.
#[derive(Debug, Clone)]
pub struct BanditPolicy {
    cfg: BanditConfig,
    arms: Vec<Arm>,
    /// Fallback chain anchors (mirroring [`DynamicTuner`]).
    fail_safe: Option<usize>,
    original: usize,
    finalized: Option<usize>,
    trials: usize,
    decisions: Vec<TuneDecision>,
    /// xorshift64* tie-break stream.
    rng: u64,
}

impl BanditPolicy {
    /// A bandit over explicit per-candidate bounds. `bounds[i] = None`
    /// marks candidate `i` as a fail-safe-style fallback: never
    /// explored, available to the fallback chain. `original` is the
    /// last-resort candidate (the untuned version / the space's
    /// baseline arm).
    #[must_use]
    pub fn new(bounds: &[Option<u64>], original: usize, cfg: BanditConfig) -> Self {
        let mut arms: Vec<Arm> = bounds
            .iter()
            .map(|b| Arm {
                bound: b.unwrap_or(u64::MAX),
                pulls: 0,
                total: 0,
                quarantined: false,
                pruned: b.is_none(),
            })
            .collect();
        let fail_safe = bounds.iter().position(Option::is_none);
        // Pre-prune: drop every arm whose bound exceeds the best bound
        // by more than the slack — no simulated launch is ever spent on
        // them. The original always survives (it is the fail-safe
        // answer and the walk's own starting point).
        let best = arms.iter().filter(|a| a.alive()).map(|a| a.bound).min().unwrap_or(0);
        let mut pruned = 0usize;
        if cfg.prune_slack_pct != u32::MAX {
            let limit =
                u64::try_from(u128::from(best) * (100 + u128::from(cfg.prune_slack_pct)) / 100)
                    .unwrap_or(u64::MAX);
            for (i, arm) in arms.iter_mut().enumerate() {
                if arm.alive() && i != original && arm.bound > limit {
                    arm.pruned = true;
                    pruned += 1;
                }
            }
        }
        if orion_telemetry::is_enabled() {
            search_metrics().arms_pruned.add(pruned as u64);
            if pruned > 0 {
                journal::record(JournalEvent::PolicyDecision {
                    policy: "bandit",
                    action: "prune",
                    candidate: pruned,
                });
            }
        }
        let finalized = {
            let alive: Vec<usize> =
                arms.iter().enumerate().filter(|(_, a)| a.alive()).map(|(i, _)| i).collect();
            if alive.len() == 1 {
                Some(alive[0])
            } else {
                None
            }
        };
        BanditPolicy {
            rng: cfg.seed | 1,
            cfg,
            arms,
            fail_safe,
            original,
            finalized,
            trials: 0,
            decisions: Vec::new(),
        }
    }

    /// A bandit over a compiled kernel's versions: bounds come from the
    /// compile-probe occupancy curve of each version, fail-safe
    /// versions stay out of the exploration set (exactly like the
    /// walk's tuning order).
    #[must_use]
    pub fn over_kernel(ck: &CompiledKernel, cfg: BanditConfig) -> Self {
        // Versions of one kernel share grid and block, so a nominal
        // launch shape (one-warp blocks, 64 blocks per SM) preserves
        // the *relative* ordering the pruner consumes; only the
        // quantization points shift.
        let ctx = BoundCtx { block: 32, blocks_per_sm: 64, warp_size: 32 };
        let bounds: Vec<Option<u64>> = ck
            .versions
            .iter()
            .map(|v| if v.fail_safe { None } else { Some(analytic_bound(v, &ctx)) })
            .collect();
        BanditPolicy::new(&bounds, ck.original, cfg)
    }

    /// Arms dropped by the analytic-bound pre-prune — the launches the
    /// search never has to spend. Fail-safe arms (excluded from
    /// exploration by construction, not by the bound) are not counted.
    #[must_use]
    pub fn pruned_arms(&self) -> usize {
        self.arms.iter().filter(|a| a.pruned && a.bound != u64::MAX).count()
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic in the seed, cheap, and good
        // enough for tie-breaking.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn alive_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.arms.iter().enumerate().filter(|(_, a)| a.alive()).map(|(i, _)| i)
    }

    /// The incumbent: best measured mean among alive arms (ties: lower
    /// bound, then lower id), else the lowest-bound alive arm.
    fn incumbent(&self) -> Option<usize> {
        self.alive_ids()
            .filter(|&i| self.arms[i].pulls > 0)
            .min_by_key(|&i| (self.arms[i].mean().unwrap_or(u64::MAX), self.arms[i].bound, i))
            .or_else(|| self.best_bound_arm())
    }

    fn best_bound_arm(&self) -> Option<usize> {
        self.alive_ids().min_by_key(|&i| (self.arms[i].bound, i))
    }

    fn max_pulls(&self) -> u32 {
        if self.cfg.max_pulls > 0 {
            self.cfg.max_pulls
        } else {
            let arms = self.alive_ids().count() as u32;
            4 * arms.max(1)
        }
    }

    /// The exploration pull the schedule wants next, `None` when it is
    /// time to finalize. See the module docs.
    fn exploration_target(&self) -> Option<usize> {
        // Phase 1 — sweep: every alive arm gets one pull, ascending
        // bound (cheapest-looking first), ties by id.
        if let Some(i) = self
            .alive_ids()
            .filter(|&i| self.arms[i].pulls == 0)
            .min_by_key(|&i| (self.arms[i].bound, i))
        {
            return Some(i);
        }
        let total: u32 = self.alive_ids().map(|i| self.arms[i].pulls).sum();
        if total >= self.max_pulls() {
            return None;
        }
        let best = self.incumbent()?;
        // Phase 2 — confirm the incumbent.
        if self.arms[best].pulls < 1 + self.cfg.confirm_pulls {
            return Some(best);
        }
        // Phase 3 — UCB refinement: pull the most optimistic challenger
        // while any could still beat the incumbent's mean.
        let best_mean = self.arms[best].mean()?;
        let c = f64::from(self.cfg.exploration_milli) / 1000.0;
        let ln_t = f64::from(total.max(2)).ln();
        self.alive_ids()
            .filter(|&i| i != best)
            .filter_map(|i| {
                let mean = self.arms[i].mean()? as f64;
                let bonus = c * best_mean as f64 * (ln_t / f64::from(self.arms[i].pulls)).sqrt();
                let optimistic = mean - bonus;
                if optimistic < best_mean as f64 {
                    // Total order: f64 from finite inputs; ties by id.
                    Some((i, optimistic))
                } else {
                    None
                }
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    fn push_decision(&mut self, d: TuneDecision) {
        self.decisions.push(d);
    }

    fn finalize(&mut self, winner: usize, last: Option<(usize, u64, u64)>) {
        self.finalized = Some(winner);
        let (version, cycles, norm) = last.unwrap_or((winner, 0, 0));
        self.push_decision(TuneDecision {
            trial: self.trials.saturating_sub(1),
            version,
            cycles,
            norm_cycles: norm,
            reason: TuneReason::Exhausted,
            finalized: self.finalized,
        });
        if orion_telemetry::is_enabled() {
            journal::record(JournalEvent::PolicyDecision {
                policy: "bandit",
                action: "finalize",
                candidate: winner,
            });
        }
    }

    /// Last-resort replacement chain, mirroring
    /// [`DynamicTuner::degrade_to_fallback`]: fail-safe, then original,
    /// then best measured survivor.
    fn fallback_survivor(&self) -> Option<usize> {
        let alive = |v: usize| self.arms.get(v).is_some_and(|a| !a.quarantined);
        self.fail_safe
            .filter(|&v| alive(v))
            .or_else(|| Some(self.original).filter(|&v| alive(v)))
            .or_else(|| self.incumbent())
    }
}

impl SearchPolicy for BanditPolicy {
    fn propose(&self) -> Option<usize> {
        if let Some(f) = self.finalized {
            return Some(f);
        }
        if let Some(i) = self.exploration_target() {
            return Some(i);
        }
        // Exploration exhausted without an explicit finalize (e.g. the
        // caller asks before observing): name the incumbent.
        self.incumbent().or_else(|| self.fallback_survivor())
    }

    fn observe(&mut self, candidate: usize, m: Measurement) {
        let norm = match m.work {
            // §4.2's integer normalization, same scale as the walk.
            Some(w) => m.cycles.saturating_mul(1 << 20) / w.max(1),
            None => m.cycles,
        };
        if self.finalized.is_some() {
            return; // steady state: nothing left to learn
        }
        if orion_telemetry::is_enabled() {
            search_metrics().launches.inc();
        }
        let Some(arm) = self.arms.get_mut(candidate) else { return };
        arm.pulls += 1;
        arm.total += u128::from(norm);
        self.trials += 1;
        let reason = if self.trials == 1 { TuneReason::Baseline } else { TuneReason::NotDegraded };
        // Deterministic tie-break noise: consume one RNG draw per
        // observation so the stream position is a pure function of the
        // pull count (keeps 1-vs-N-worker runs bit-identical).
        let _ = self.next_rand();
        self.push_decision(TuneDecision {
            trial: self.trials - 1,
            version: candidate,
            cycles: m.cycles,
            norm_cycles: norm,
            reason,
            finalized: None,
        });
        if self.exploration_target().is_none() {
            if let Some(best) = self.incumbent() {
                self.finalize(best, Some((candidate, m.cycles, norm)));
            }
        }
    }

    fn verdict(&self) -> PolicyVerdict {
        if let Some(f) = self.finalized {
            PolicyVerdict::Finalized(f)
        } else if self.incumbent().is_some() || self.fallback_survivor().is_some() {
            PolicyVerdict::Exploring
        } else {
            PolicyVerdict::Dead
        }
    }

    fn select(&self) -> usize {
        self.finalized
            .or_else(|| self.incumbent())
            .or_else(|| self.fallback_survivor())
            .unwrap_or(self.original)
    }

    fn probe_slowdown(&self, _cycles: u64) -> Option<f64> {
        // No walk anchor: the bandit's sweep has no "previous step" to
        // regress against, so borderline extensions never trigger.
        None
    }

    fn quarantine(&mut self, candidate: usize) {
        let Some(arm) = self.arms.get_mut(candidate) else { return };
        if arm.quarantined {
            return;
        }
        arm.quarantined = true;
        arm.pulls = 0;
        arm.total = 0;
        let was_final = self.finalized == Some(candidate);
        let reason = if was_final {
            self.finalized = self.fallback_survivor();
            TuneReason::FellBack
        } else {
            if self.finalized.is_none() && self.exploration_target().is_none() {
                self.finalized = self.incumbent().or_else(|| self.fallback_survivor());
            }
            TuneReason::Quarantined
        };
        if orion_telemetry::is_enabled() {
            orion_telemetry::counter(
                "resilience",
                if was_final { "fellback" } else { "quarantined" },
                1,
            );
            if was_final {
                if let Some(to) = self.finalized {
                    journal::record(JournalEvent::PolicyDecision {
                        policy: "bandit",
                        action: "fallback",
                        candidate: to,
                    });
                }
            }
        }
        self.push_decision(TuneDecision {
            trial: self.trials,
            version: candidate,
            cycles: 0,
            norm_cycles: 0,
            reason,
            finalized: self.finalized,
        });
    }

    fn degrade_to_fallback(&mut self) -> Option<usize> {
        if self.finalized.is_none() {
            let alive = |v: usize| self.arms.get(v).is_some_and(|a| !a.quarantined);
            self.finalized =
                Some(self.original).filter(|&v| alive(v)).or_else(|| self.fallback_survivor());
        }
        if orion_telemetry::is_enabled() {
            orion_telemetry::counter("resilience", "degraded", 1);
        }
        self.push_decision(TuneDecision {
            trial: self.trials,
            version: self.finalized.unwrap_or(self.original),
            cycles: 0,
            norm_cycles: 0,
            reason: TuneReason::Degraded,
            finalized: self.finalized,
        });
        self.finalized
    }

    fn is_quarantined(&self, candidate: usize) -> bool {
        self.arms.get(candidate).is_some_and(|a| a.quarantined)
    }

    fn quarantined_count(&self) -> usize {
        self.arms.iter().filter(|a| a.quarantined).count()
    }

    fn trials(&self) -> usize {
        self.trials
    }

    fn decisions(&self) -> &[TuneDecision] {
        &self.decisions
    }

    fn into_decisions(self: Box<Self>) -> Vec<TuneDecision> {
        self.decisions
    }

    fn name(&self) -> &'static str {
        "bandit"
    }

    fn clone_box(&self) -> Box<dyn SearchPolicy> {
        Box::new(self.clone())
    }
}

/// Handles to the `search/*` counters (idempotent registration).
struct SearchMetrics {
    arms_pruned: registry::CounterHandle,
    launches: registry::CounterHandle,
}

fn search_metrics() -> SearchMetrics {
    let scope = registry::global().scope("search");
    SearchMetrics {
        arms_pruned: scope.register_counter(
            "arms_pruned",
            "Candidate arms dropped by the analytic bound before any launch",
            "",
        ),
        launches: scope.register_counter(
            "launches",
            "Measurements consumed by search policies",
            "",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandit(bounds: &[u64], cfg: BanditConfig) -> BanditPolicy {
        let b: Vec<Option<u64>> = bounds.iter().map(|&x| Some(x)).collect();
        BanditPolicy::new(&b, 0, cfg)
    }

    fn drive(policy: &mut dyn SearchPolicy, times: &[u64]) -> Vec<usize> {
        let mut sequence = Vec::new();
        while matches!(policy.verdict(), PolicyVerdict::Exploring) {
            let v = policy.propose().expect("alive");
            sequence.push(v);
            policy.observe(v, Measurement::raw(times[v]));
            if sequence.len() > 256 {
                panic!("bandit failed to converge: {sequence:?}");
            }
        }
        sequence
    }

    #[test]
    fn bandit_prunes_dominated_arms_without_launching_them() {
        // Arm 2's bound is 10× the best: pruned, never proposed.
        let mut p = bandit(&[100, 110, 1000], BanditConfig::default());
        let seq = drive(&mut p, &[50, 40, 1]);
        assert!(!seq.contains(&2), "dominated arm was launched: {seq:?}");
        assert_eq!(p.verdict(), PolicyVerdict::Finalized(1));
    }

    #[test]
    fn bandit_is_deterministic_in_the_seed() {
        let times = [90u64, 70, 80, 75];
        let cfg = BanditConfig { prune_slack_pct: u32::MAX, ..BanditConfig::default() };
        let mut a = bandit(&[100, 100, 100, 100], cfg);
        let mut b = bandit(&[100, 100, 100, 100], cfg);
        assert_eq!(drive(&mut a, &times), drive(&mut b, &times));
        assert_eq!(a.select(), b.select());
        assert_eq!(a.decisions(), b.decisions());
    }

    #[test]
    fn bandit_sweeps_in_ascending_bound_order_and_picks_the_fastest() {
        let cfg = BanditConfig { prune_slack_pct: u32::MAX, ..BanditConfig::default() };
        let mut p = bandit(&[300, 100, 200], cfg);
        let seq = drive(&mut p, &[60, 90, 30]);
        assert_eq!(&seq[..3], &[1, 2, 0], "sweep must follow ascending bounds");
        assert_eq!(p.verdict(), PolicyVerdict::Finalized(2));
        assert_eq!(p.select(), 2);
    }

    #[test]
    fn quarantined_finalized_arm_falls_back() {
        let cfg = BanditConfig { prune_slack_pct: u32::MAX, ..BanditConfig::default() };
        let mut p = bandit(&[100, 100], cfg);
        drive(&mut p, &[50, 80]);
        assert_eq!(p.verdict(), PolicyVerdict::Finalized(0));
        p.quarantine(0);
        // Fallback chain: no fail-safe, original (0) dead → survivor 1.
        assert_eq!(p.verdict(), PolicyVerdict::Finalized(1));
        assert_eq!(p.decisions().last().unwrap().reason, TuneReason::FellBack);
        p.quarantine(1);
        assert_eq!(p.verdict(), PolicyVerdict::Dead);
        assert!(p.propose().is_none());
    }

    #[test]
    fn degrade_settles_on_the_original() {
        let cfg = BanditConfig { prune_slack_pct: u32::MAX, ..BanditConfig::default() };
        let mut p = bandit(&[100, 100, 100], cfg);
        let v = p.propose().unwrap();
        p.observe(v, Measurement::raw(10));
        assert_eq!(p.degrade_to_fallback(), Some(0));
        assert_eq!(p.decisions().last().unwrap().reason, TuneReason::Degraded);
    }

    #[test]
    fn work_normalization_matches_the_walk_scale() {
        let cfg = BanditConfig { prune_slack_pct: u32::MAX, ..BanditConfig::default() };
        let mut p = bandit(&[100, 100], cfg);
        let v = p.propose().unwrap();
        p.observe(v, Measurement::with_work(100, 1 << 20));
        assert_eq!(p.decisions()[0].norm_cycles, 100);
    }

    #[test]
    fn analytic_bound_flattens_once_residency_covers_the_grid() {
        use crate::compiler::KernelVersion;
        use orion_alloc::realize::AllocReport;
        use orion_kir::mir::MModule;
        use orion_kir::types::FuncId;
        let v = |warps: u32, moves: u32| KernelVersion {
            machine: MModule {
                funcs: vec![],
                entry: FuncId(0),
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                user_smem_bytes: 0,
                static_stack_moves: moves,
            },
            target_warps: warps,
            achieved_warps: warps,
            occupancy: f64::from(warps) / 48.0,
            extra_smem: 0,
            report: AllocReport {
                kernel_max_live: 0,
                regs_per_thread: 16,
                smem_slots_per_thread: 0,
                local_slots_per_thread: 0,
                static_moves: 0,
                per_func: vec![],
            },
            fail_safe: false,
            label: String::new(),
        };
        let ctx = BoundCtx::new(64, 16, 8, 32); // 2 blocks per SM
                                                // 8 warps = 4 blocks resident: one round. 2 warps = 1 block: two.
        assert!(analytic_bound(&v(2, 0), &ctx) > analytic_bound(&v(8, 0), &ctx));
        // Both 8 and 16 warps cover the 2 blocks in one round — equal
        // cost, so spill-free low occupancy is never *worse* there...
        assert_eq!(analytic_bound(&v(8, 0), &ctx), analytic_bound(&v(16, 0), &ctx));
        // ...and spill moves make the higher-occupancy arm lose.
        assert!(analytic_bound(&v(16, 9), &ctx) > analytic_bound(&v(8, 0), &ctx));
    }
}
