//! Shared construction of [`KernelVersion`]s.
//!
//! The compile stage ([`crate::compiler::compile`]), the nvcc-like
//! baseline, and the exhaustive occupancy sweep all produce the same
//! artifact — a compiled binary annotated with the occupancy the driver
//! will schedule it at. [`VersionBuilder`] is the single place that
//! assembles one, always through the compile cache
//! ([`crate::cache::allocate_cached`]), so every caller shares both the
//! construction logic and the cached allocations.

use crate::budget::{budget_for_warps, smem_padding_for_warps};
use crate::cache::allocate_cached;
use crate::compiler::{CompiledKernel, Direction, KernelVersion};
use crate::error::OrionError;
use crate::splitting::{can_split, SplitConfig};
use orion_alloc::realize::{AllocOptions, SlotBudget};
use orion_gpusim::device::{CacheConfig, DeviceSpec};
use orion_gpusim::occupancy::{occupancy, KernelResources};
use orion_kir::function::Module;

/// Builds [`KernelVersion`]s for one module on one device at one block
/// size.
#[derive(Debug, Clone, Copy)]
pub struct VersionBuilder<'a> {
    dev: &'a DeviceSpec,
    block: u32,
    module: &'a Module,
}

impl<'a> VersionBuilder<'a> {
    /// A builder for `module` on `dev` launched with `block` threads per
    /// block.
    pub fn new(dev: &'a DeviceSpec, block: u32, module: &'a Module) -> Self {
        VersionBuilder { dev, block, module }
    }

    /// Driver-visible resources of a compiled binary plus `extra_smem`
    /// bytes of per-block padding.
    fn resources(&self, machine: &orion_kir::mir::MModule, extra_smem: u32) -> KernelResources {
        KernelResources {
            regs_per_thread: machine.regs_per_thread,
            smem_per_block: machine.smem_bytes_per_block(self.block) + extra_smem,
            block_size: self.block,
        }
    }

    /// Allocate under `budget` (through the compile cache) and derive
    /// the occupancy the driver will schedule, with `extra_smem` bytes
    /// of per-block padding already applied.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn realize(
        &self,
        budget: SlotBudget,
        extra_smem: u32,
        label: impl Into<String>,
    ) -> Result<KernelVersion, OrionError> {
        let alloc = allocate_cached(self.module, budget, &AllocOptions::default())?;
        let occ = occupancy(self.dev, &self.resources(&alloc.machine, extra_smem));
        Ok(KernelVersion {
            target_warps: occ.active_warps,
            achieved_warps: occ.active_warps,
            occupancy: occ.occupancy,
            extra_smem,
            report: alloc.report,
            machine: alloc.machine,
            fail_safe: false,
            label: label.into(),
        })
    }

    /// One sweep level: reallocate for `target_warps` warps per SM,
    /// padding shared memory down to the target when the binary's
    /// natural occupancy exceeds it. `None` when the level is not
    /// achievable (no budget, or zero schedulable blocks).
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn sweep_level(&self, target_warps: u32) -> Result<Option<KernelVersion>, OrionError> {
        let Some(budget) =
            budget_for_warps(self.dev, self.block, self.module.user_smem_bytes, target_warps)
        else {
            return Ok(None);
        };
        let alloc = allocate_cached(self.module, budget, &AllocOptions::default())?;
        let mut res = self.resources(&alloc.machine, 0);
        let mut extra = 0;
        if let Some(pad) = smem_padding_for_warps(self.dev, &res, target_warps) {
            extra = pad;
            res.smem_per_block += pad;
        }
        let occ = occupancy(self.dev, &res);
        if occ.active_blocks == 0 {
            return Ok(None);
        }
        Ok(Some(KernelVersion {
            target_warps,
            achieved_warps: occ.active_warps,
            occupancy: occ.occupancy,
            extra_smem: extra,
            report: alloc.report,
            machine: alloc.machine,
            fail_safe: false,
            label: format!("sweep-occ={}", occ.active_warps),
        }))
    }

    /// Re-derive `base` at `target_warps` by setting its driver-side
    /// shared-memory padding to `pad` bytes — the paper's
    /// no-recompilation downward step. The label becomes
    /// `occ=<achieved>`; callers override it (and `fail_safe`) as
    /// needed.
    pub fn repad(&self, base: &KernelVersion, target_warps: u32, pad: u32) -> KernelVersion {
        let occ = occupancy(self.dev, &self.resources(&base.machine, pad));
        let mut v = base.clone();
        v.extra_smem = pad;
        v.target_warps = target_warps;
        v.achieved_warps = occ.active_warps;
        v.occupancy = occ.occupancy;
        v.fail_safe = false;
        v.label = format!("occ={}", occ.active_warps);
        v
    }

    /// [`VersionBuilder::repad`] with the padding computed: pad `base`
    /// down to `target_warps` warps per SM. `None` when no amount of
    /// padding yields that level.
    pub fn padded(&self, base: &KernelVersion, target_warps: u32) -> Option<KernelVersion> {
        let res = self.resources(&base.machine, 0);
        let pad = smem_padding_for_warps(self.dev, &res, target_warps)?;
        Some(self.repad(base, target_warps, pad))
    }
}

/// One arm of the widened tuning lattice: a realized version plus the
/// per-launch execution knobs that distinguish it from its siblings.
#[derive(Debug, Clone)]
pub struct SpaceArm {
    /// The version, realized against the arm's L1/shared split (the
    /// occupancy baked into it already reflects that split's
    /// shared-memory capacity).
    pub version: KernelVersion,
    /// Per-launch L1/shared-memory split override
    /// (`cudaFuncSetCacheConfig`); `None` keeps the device's configured
    /// split.
    pub cache_config: Option<CacheConfig>,
    /// Grid slices per measurement pull (`1` = whole grid in one
    /// launch). Slices cover the grid exactly once per pull, so arms of
    /// different granularity stay directly comparable by total cycles.
    pub pieces: u32,
}

/// The widened candidate space of the bandit search (ISSUE 10): the
/// cross product **occupancy level × L1/shared split × split
/// granularity**, in place of the paper's linear ≤ 5-version occupancy
/// list. Each point is a [`SpaceArm`]; dominated arms are cheap to
/// pre-prune analytically ([`crate::policy::analytic_bound`]) because
/// every arm carries its compile-probe occupancy curve.
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    /// The arms, sorted along the tuning direction (ascending occupancy
    /// for [`Direction::Increasing`], descending for
    /// [`Direction::Decreasing`]), default split before override,
    /// whole-grid before split pulls.
    pub arms: Vec<SpaceArm>,
    /// The arm standing in for the untuned launch: default split, whole
    /// grid, at the binary's highest achievable occupancy (the driver's
    /// untouched schedule). Fallback chains settle here.
    pub original: usize,
    /// The tuning direction the space was enumerated for.
    pub direction: Direction,
}

impl CandidateSpace {
    /// Enumerate the lattice for `module` on `dev` at `block` threads
    /// per block, launched over `grid` blocks. Occupancy levels come
    /// from the same block-granular sweep as [`Orion::sweep`]
    /// (per split, since the split changes shared-memory capacity and
    /// with it which levels are achievable); the split-granularity axis
    /// is gated by [`can_split`] so undersized grids only get
    /// whole-grid arms.
    ///
    /// [`Orion::sweep`]: crate::orion::Orion::sweep
    ///
    /// # Errors
    /// [`OrionError::NoAchievableOccupancy`] when no level is achievable
    /// under any split; allocation failures propagate.
    pub fn enumerate(
        dev: &DeviceSpec,
        block: u32,
        module: &Module,
        direction: Direction,
        grid: u32,
        split: SplitConfig,
    ) -> Result<CandidateSpace, OrionError> {
        let alt = match dev.cache_config {
            CacheConfig::SmallCache => CacheConfig::LargeCache,
            CacheConfig::LargeCache => CacheConfig::SmallCache,
        };
        let granularities: &[u32] =
            if split.pieces > 1 && can_split(grid, dev.num_sms, split.pieces) {
                &[1, split.pieces]
            } else {
                &[1]
            };
        let mut arms: Vec<SpaceArm> = Vec::new();
        for cache in [None, Some(alt)] {
            let dev_c = cache.map_or_else(|| dev.clone(), |c| dev.with_cache_config(c));
            let vb = VersionBuilder::new(&dev_c, block, module);
            let warps_per_block = block.div_ceil(dev_c.warp_size);
            let mut levels: Vec<KernelVersion> = Vec::new();
            let mut w = warps_per_block;
            while w <= dev_c.max_warps_per_sm {
                if let Some(v) = vb.sweep_level(w)? {
                    if !levels.iter().any(|x| x.achieved_warps == v.achieved_warps) {
                        levels.push(v);
                    }
                }
                w += warps_per_block;
            }
            for v in levels {
                for &pieces in granularities {
                    let mut version = v.clone();
                    version.label = format!(
                        "occ={}/{}{}",
                        version.achieved_warps,
                        match cache {
                            None => "l1-default",
                            Some(CacheConfig::SmallCache) => "l1-small",
                            Some(CacheConfig::LargeCache) => "l1-large",
                        },
                        if pieces > 1 { format!("/p{pieces}") } else { String::new() },
                    );
                    arms.push(SpaceArm { version, cache_config: cache, pieces });
                }
            }
        }
        if arms.is_empty() {
            return Err(OrionError::NoAchievableOccupancy);
        }
        // Direction-ordered: the paper walk visits arms the way Figure 9
        // walks occupancy levels; ties resolve default-split-first, then
        // coarsest granularity, so the walk's anchor sequence is stable.
        arms.sort_by_key(|a| {
            let warps = i64::from(a.version.achieved_warps);
            let dir = match direction {
                Direction::Increasing => warps,
                Direction::Decreasing => -warps,
            };
            (dir, u8::from(a.cache_config.is_some()), a.pieces)
        });
        let original = arms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.cache_config.is_none() && a.pieces == 1)
            .max_by_key(|(_, a)| a.version.achieved_warps)
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(CandidateSpace { arms, original, direction })
    }

    /// View the space as a [`CompiledKernel`] so any
    /// [`SearchPolicy`](crate::policy::SearchPolicy) built over kernel
    /// versions (the paper walk included) runs over the arms unchanged:
    /// version `i` is arm `i`, and the tuning order is the original
    /// first, then the remaining arms in direction order — the same
    /// convention [`crate::compiler::compile`] emits.
    #[must_use]
    pub fn to_compiled(&self, max_live: u32) -> CompiledKernel {
        let tuning_order: Vec<usize> = std::iter::once(self.original)
            .chain((0..self.arms.len()).filter(|&i| i != self.original))
            .collect();
        CompiledKernel {
            versions: self.arms.iter().map(|a| a.version.clone()).collect(),
            direction: self.direction,
            original: self.original,
            max_live,
            tuning_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn kernel(live: usize) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let vals: Vec<_> = (0..live).map(|k| b.fmul(x, Operand::Imm(k as i64))).collect();
        let mut acc = b.mov_f32(0.0);
        for v in vals {
            acc = b.fadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, addr, acc, 0);
        Module::new(b.finish())
    }

    #[test]
    fn realize_matches_occupancy_of_binary() {
        let dev = DeviceSpec::gtx680();
        let m = kernel(8);
        let vb = VersionBuilder::new(&dev, 256, &m);
        let v = vb.realize(SlotBudget { reg_slots: 16, smem_slots: 0 }, 0, "t").unwrap();
        assert_eq!(v.label, "t");
        assert_eq!(v.target_warps, v.achieved_warps);
        assert!(v.achieved_warps > 0);
        assert!(!v.fail_safe);
    }

    #[test]
    fn padded_reaches_lower_level_without_recompiling() {
        let dev = DeviceSpec::c2075();
        let m = kernel(4);
        let vb = VersionBuilder::new(&dev, 192, &m);
        let base = vb.realize(SlotBudget { reg_slots: 16, smem_slots: 0 }, 0, "base").unwrap();
        let warps_per_block = 192u32.div_ceil(dev.warp_size);
        let target = base.achieved_warps - warps_per_block;
        let down = vb.padded(&base, target).expect("padding achievable");
        assert!(down.extra_smem > 0);
        assert!(down.achieved_warps < base.achieved_warps);
        // Same binary: padding is a driver-side knob.
        assert_eq!(down.machine, base.machine);
    }

    #[test]
    fn repad_zero_is_identity_occupancy() {
        let dev = DeviceSpec::c2075();
        let m = kernel(4);
        let vb = VersionBuilder::new(&dev, 192, &m);
        let base = vb.realize(SlotBudget { reg_slots: 16, smem_slots: 0 }, 0, "base").unwrap();
        let same = vb.repad(&base, base.achieved_warps, 0);
        assert_eq!(same.achieved_warps, base.achieved_warps);
        assert_eq!(same.extra_smem, 0);
    }

    #[test]
    fn candidate_space_spans_all_three_axes() {
        let dev = DeviceSpec::gtx680();
        let m = kernel(8);
        // grid 64 over 8 SMs supports 8-way splitting.
        let space = CandidateSpace::enumerate(
            &dev,
            64,
            &m,
            Direction::Increasing,
            64,
            SplitConfig::default(),
        )
        .unwrap();
        assert!(
            space.arms.iter().any(|a| a.cache_config.is_none())
                && space.arms.iter().any(|a| a.cache_config.is_some()),
            "both L1/shared splits must appear"
        );
        assert!(
            space.arms.iter().any(|a| a.pieces == 1) && space.arms.iter().any(|a| a.pieces == 8),
            "both split granularities must appear"
        );
        let occs: std::collections::BTreeSet<u32> =
            space.arms.iter().map(|a| a.version.achieved_warps).collect();
        assert!(occs.len() >= 3, "several occupancy levels: {occs:?}");
        // Direction order with stable ties.
        assert!(space
            .arms
            .windows(2)
            .all(|w| w[0].version.achieved_warps <= w[1].version.achieved_warps));
        // The original arm is the untouched schedule: default split,
        // whole grid, highest occupancy.
        let orig = &space.arms[space.original];
        assert!(orig.cache_config.is_none());
        assert_eq!(orig.pieces, 1);
        assert_eq!(
            orig.version.achieved_warps,
            space
                .arms
                .iter()
                .filter(|a| a.cache_config.is_none() && a.pieces == 1)
                .map(|a| a.version.achieved_warps)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn undersized_grids_get_no_split_arms() {
        let dev = DeviceSpec::gtx680(); // 8 SMs: 8-way split needs ≥ 64 blocks
        let m = kernel(4);
        let space = CandidateSpace::enumerate(
            &dev,
            32,
            &m,
            Direction::Decreasing,
            16,
            SplitConfig::default(),
        )
        .unwrap();
        assert!(space.arms.iter().all(|a| a.pieces == 1));
        assert!(space
            .arms
            .windows(2)
            .all(|w| w[0].version.achieved_warps >= w[1].version.achieved_warps));
    }

    #[test]
    fn to_compiled_preserves_arm_indices_and_walk_order() {
        let dev = DeviceSpec::c2075();
        let m = kernel(6);
        let space = CandidateSpace::enumerate(
            &dev,
            192,
            &m,
            Direction::Increasing,
            28,
            SplitConfig::default(),
        )
        .unwrap();
        let ck = space.to_compiled(12);
        assert_eq!(ck.versions.len(), space.arms.len());
        assert_eq!(ck.original, space.original);
        assert_eq!(ck.tuning_order[0], space.original, "walk starts at the original arm");
        let mut seen: Vec<usize> = ck.tuning_order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..space.arms.len()).collect::<Vec<_>>(), "order covers every arm once");
        for (arm, v) in space.arms.iter().zip(&ck.versions) {
            assert_eq!(arm.version.label, v.label);
        }
    }
}
