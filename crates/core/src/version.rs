//! Shared construction of [`KernelVersion`]s.
//!
//! The compile stage ([`crate::compiler::compile`]), the nvcc-like
//! baseline, and the exhaustive occupancy sweep all produce the same
//! artifact — a compiled binary annotated with the occupancy the driver
//! will schedule it at. [`VersionBuilder`] is the single place that
//! assembles one, always through the compile cache
//! ([`crate::cache::allocate_cached`]), so every caller shares both the
//! construction logic and the cached allocations.

use crate::budget::{budget_for_warps, smem_padding_for_warps};
use crate::cache::allocate_cached;
use crate::compiler::KernelVersion;
use crate::error::OrionError;
use orion_alloc::realize::{AllocOptions, SlotBudget};
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::occupancy::{occupancy, KernelResources};
use orion_kir::function::Module;

/// Builds [`KernelVersion`]s for one module on one device at one block
/// size.
#[derive(Debug, Clone, Copy)]
pub struct VersionBuilder<'a> {
    dev: &'a DeviceSpec,
    block: u32,
    module: &'a Module,
}

impl<'a> VersionBuilder<'a> {
    /// A builder for `module` on `dev` launched with `block` threads per
    /// block.
    pub fn new(dev: &'a DeviceSpec, block: u32, module: &'a Module) -> Self {
        VersionBuilder { dev, block, module }
    }

    /// Driver-visible resources of a compiled binary plus `extra_smem`
    /// bytes of per-block padding.
    fn resources(&self, machine: &orion_kir::mir::MModule, extra_smem: u32) -> KernelResources {
        KernelResources {
            regs_per_thread: machine.regs_per_thread,
            smem_per_block: machine.smem_bytes_per_block(self.block) + extra_smem,
            block_size: self.block,
        }
    }

    /// Allocate under `budget` (through the compile cache) and derive
    /// the occupancy the driver will schedule, with `extra_smem` bytes
    /// of per-block padding already applied.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn realize(
        &self,
        budget: SlotBudget,
        extra_smem: u32,
        label: impl Into<String>,
    ) -> Result<KernelVersion, OrionError> {
        let alloc = allocate_cached(self.module, budget, &AllocOptions::default())?;
        let occ = occupancy(self.dev, &self.resources(&alloc.machine, extra_smem));
        Ok(KernelVersion {
            target_warps: occ.active_warps,
            achieved_warps: occ.active_warps,
            occupancy: occ.occupancy,
            extra_smem,
            report: alloc.report,
            machine: alloc.machine,
            fail_safe: false,
            label: label.into(),
        })
    }

    /// One sweep level: reallocate for `target_warps` warps per SM,
    /// padding shared memory down to the target when the binary's
    /// natural occupancy exceeds it. `None` when the level is not
    /// achievable (no budget, or zero schedulable blocks).
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn sweep_level(&self, target_warps: u32) -> Result<Option<KernelVersion>, OrionError> {
        let Some(budget) =
            budget_for_warps(self.dev, self.block, self.module.user_smem_bytes, target_warps)
        else {
            return Ok(None);
        };
        let alloc = allocate_cached(self.module, budget, &AllocOptions::default())?;
        let mut res = self.resources(&alloc.machine, 0);
        let mut extra = 0;
        if let Some(pad) = smem_padding_for_warps(self.dev, &res, target_warps) {
            extra = pad;
            res.smem_per_block += pad;
        }
        let occ = occupancy(self.dev, &res);
        if occ.active_blocks == 0 {
            return Ok(None);
        }
        Ok(Some(KernelVersion {
            target_warps,
            achieved_warps: occ.active_warps,
            occupancy: occ.occupancy,
            extra_smem: extra,
            report: alloc.report,
            machine: alloc.machine,
            fail_safe: false,
            label: format!("sweep-occ={}", occ.active_warps),
        }))
    }

    /// Re-derive `base` at `target_warps` by setting its driver-side
    /// shared-memory padding to `pad` bytes — the paper's
    /// no-recompilation downward step. The label becomes
    /// `occ=<achieved>`; callers override it (and `fail_safe`) as
    /// needed.
    pub fn repad(&self, base: &KernelVersion, target_warps: u32, pad: u32) -> KernelVersion {
        let occ = occupancy(self.dev, &self.resources(&base.machine, pad));
        let mut v = base.clone();
        v.extra_smem = pad;
        v.target_warps = target_warps;
        v.achieved_warps = occ.active_warps;
        v.occupancy = occ.occupancy;
        v.fail_safe = false;
        v.label = format!("occ={}", occ.active_warps);
        v
    }

    /// [`VersionBuilder::repad`] with the padding computed: pad `base`
    /// down to `target_warps` warps per SM. `None` when no amount of
    /// padding yields that level.
    pub fn padded(&self, base: &KernelVersion, target_warps: u32) -> Option<KernelVersion> {
        let res = self.resources(&base.machine, 0);
        let pad = smem_padding_for_warps(self.dev, &res, target_warps)?;
        Some(self.repad(base, target_warps, pad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn kernel(live: usize) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let vals: Vec<_> = (0..live).map(|k| b.fmul(x, Operand::Imm(k as i64))).collect();
        let mut acc = b.mov_f32(0.0);
        for v in vals {
            acc = b.fadd(acc, v);
        }
        b.st(MemSpace::Global, Width::W32, addr, acc, 0);
        Module::new(b.finish())
    }

    #[test]
    fn realize_matches_occupancy_of_binary() {
        let dev = DeviceSpec::gtx680();
        let m = kernel(8);
        let vb = VersionBuilder::new(&dev, 256, &m);
        let v = vb.realize(SlotBudget { reg_slots: 16, smem_slots: 0 }, 0, "t").unwrap();
        assert_eq!(v.label, "t");
        assert_eq!(v.target_warps, v.achieved_warps);
        assert!(v.achieved_warps > 0);
        assert!(!v.fail_safe);
    }

    #[test]
    fn padded_reaches_lower_level_without_recompiling() {
        let dev = DeviceSpec::c2075();
        let m = kernel(4);
        let vb = VersionBuilder::new(&dev, 192, &m);
        let base = vb.realize(SlotBudget { reg_slots: 16, smem_slots: 0 }, 0, "base").unwrap();
        let warps_per_block = 192u32.div_ceil(dev.warp_size);
        let target = base.achieved_warps - warps_per_block;
        let down = vb.padded(&base, target).expect("padding achievable");
        assert!(down.extra_smem > 0);
        assert!(down.achieved_warps < base.achieved_warps);
        // Same binary: padding is a driver-side knob.
        assert_eq!(down.machine, base.machine);
    }

    #[test]
    fn repad_zero_is_identity_occupancy() {
        let dev = DeviceSpec::c2075();
        let m = kernel(4);
        let vb = VersionBuilder::new(&dev, 192, &m);
        let base = vb.realize(SlotBudget { reg_slots: 16, smem_slots: 0 }, 0, "base").unwrap();
        let same = vb.repad(&base, base.achieved_warps, 0);
        assert_eq!(same.achieved_warps, base.achieved_warps);
        assert_eq!(same.extra_smem, 0);
    }
}
