//! Service-resilience edge cases on the deterministic [`ReplayBackend`]:
//! the admission queue's degenerate zero-capacity configuration, and a
//! job whose every candidate blows its sim-cycle deadline. Both must
//! resolve to definite, coherent dispositions — the service's core
//! contract — without touching a real simulator.

use orion_core::backend::ReplayBackend;
use orion_core::compiler::TuningConfig;
use orion_core::error::OrionError;
use orion_core::runtime::TuneReason;
use orion_core::service::{
    DegradeReason, JobDisposition, JobPolicy, KernelJob, OrionService, ServiceConfig,
};
use orion_core::session::SessionState;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

fn toy_module() -> Module {
    let mut b = FunctionBuilder::kernel("edge");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let y = b.imul(x, Operand::Imm(3));
    b.st(MemSpace::Global, Width::W32, addr, y, 0);
    Module::new(b.finish())
}

fn job(name: &str, iterations: u32, policy: JobPolicy) -> KernelJob {
    KernelJob {
        name: name.into(),
        module: toy_module(),
        launch: Launch { grid: 2, block: 32 },
        params: vec![0],
        global: vec![0u8; 4 * 64],
        iterations,
        tuning: TuningConfig::new(32),
        policy,
    }
}

#[test]
fn zero_capacity_queue_rejects_every_job_cleanly() {
    // The drain-switch configuration: nothing is admitted, so nothing
    // runs — every job must still come back, in order, with a definite
    // Rejected disposition and an Overloaded error naming the capacity.
    let svc = OrionService::new(
        ReplayBackend::new(DeviceSpec::gtx680(), 500),
        ServiceConfig { workers: 2, queue_capacity: Some(0), ..ServiceConfig::default() },
    );
    let names = ["a", "b", "c"];
    let report = svc.run(names.iter().map(|n| job(n, 4, JobPolicy::default())).collect());
    assert_eq!(report.kernels.len(), names.len(), "no job may be lost at admission");
    for (k, want) in report.kernels.iter().zip(names) {
        assert_eq!(k.name, want, "reports stay in submission order");
        assert_eq!(k.disposition, JobDisposition::Rejected);
        let err = k.outcome.as_ref().unwrap_err();
        assert!(
            matches!(err.root_cause(), OrionError::Overloaded { capacity: 0, submitted: 3 }),
            "unexpected rejection error: {err}"
        );
        // Rejection happens before any work: no launches, no compile.
        assert_eq!(k.metrics.launch_cycles.count(), 0);
        assert_eq!(k.metrics.compile_wall_us, 0);
    }
    // Priority cannot save a job from a zero-capacity queue.
    let mut high = job("vip", 4, JobPolicy::default());
    high.policy.priority = u8::MAX;
    let report = svc.run(vec![high]);
    assert_eq!(report.kernels[0].disposition, JobDisposition::Rejected);
}

#[test]
fn every_candidate_over_deadline_lands_degraded_on_the_original() {
    // Every replayed launch costs 10_000 cycles against a 5_000-cycle
    // deadline: the baseline measurement alone blows the budget, so the
    // walk never reaches a second candidate. The job must resolve
    // Degraded — settled on the original (fail-safe) version — with a
    // decision log that says exactly that, not an error.
    let be = ReplayBackend::new(DeviceSpec::gtx680(), 10_000);
    let svc = OrionService::new(be, ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let policy = JobPolicy { deadline_cycles: Some(5_000), ..JobPolicy::default() };
    let report = svc.run(vec![job("late", 8, policy)]);
    let k = &report.kernels[0];
    assert_eq!(k.disposition, JobDisposition::Degraded(DegradeReason::DeadlineCycles));
    let o = k.outcome.as_ref().expect("degraded jobs report an outcome, not an error");
    assert_eq!(o.state, SessionState::Degraded);
    assert_eq!(o.selected, 0, "the fail-safe selection is the original version");
    // Coherent decision log: the baseline measurement, then the degrade
    // settling on the original — no phantom walk steps after it.
    let reasons: Vec<TuneReason> = o.decisions.iter().map(|d| d.reason).collect();
    assert_eq!(reasons.last(), Some(&TuneReason::Degraded), "{reasons:?}");
    assert!(
        reasons[..reasons.len() - 1].iter().all(|r| *r == TuneReason::Baseline),
        "nothing but warmup may precede the degrade: {reasons:?}"
    );
    let last = o.decisions.last().unwrap();
    assert_eq!(last.version, 0);
    assert_eq!(last.finalized, Some(0));
    // The deadline gate is checked before each launch chain, so the
    // overshoot is bounded by one chain's cycles.
    assert!(o.total_cycles >= 5_000, "the budget was genuinely exceeded");

    // Same backend, roomy deadline: the job finalizes normally —
    // proving the degrade above came from the budget, not the backend.
    let be = ReplayBackend::new(DeviceSpec::gtx680(), 10_000);
    let svc = OrionService::new(be, ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let roomy = JobPolicy { deadline_cycles: Some(u64::MAX), ..JobPolicy::default() };
    let report = svc.run(vec![job("fine", 8, roomy)]);
    assert_eq!(report.kernels[0].disposition, JobDisposition::Finalized);
}
