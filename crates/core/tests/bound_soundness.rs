//! Pruning-soundness property test (ISSUE 10 satellite).
//!
//! [`orion_core::policy::BanditPolicy`] pre-prunes arms whose
//! [`orion_core::policy::analytic_bound`] exceeds the best bound by
//! more than [`BanditConfig::prune_slack_pct`] — those arms are never
//! launched. That is only sound if, across realistic device/workload
//! instances, the arm an exhaustive sweep would pick always survives
//! the cut: the bound may be loose, but the *winner* must never sit
//! beyond the slack.
//!
//! This property test sweeps ≥ 50 pseudo-random instances (device ×
//! block shape × grid × register pressure), measures every arm of the
//! enumerated candidate space exhaustively on the simulator, and
//! asserts the measured winner is inside the default prune window.

use orion_core::policy::{analytic_bound, BanditConfig, BoundCtx};
use orion_core::splitting::SplitConfig;
use orion_core::version::CandidateSpace;
use orion_core::Orion;
use orion_gpusim::device::DeviceSpec;
use orion_gpusim::exec::Launch;
use orion_gpusim::sim::{run_launch_opts, LaunchOptions};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A kernel whose register pressure scales with `live` — same shape the
/// facade tests use, so the allocator produces a multi-level space.
fn kernel(live: usize) -> Module {
    let mut b = FunctionBuilder::kernel("k");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let vals: Vec<_> = (0..live).map(|k| b.fmul(x, Operand::Imm(k as i64))).collect();
    let mut acc = b.mov_f32(0.0);
    for v in vals {
        acc = b.fadd(acc, v);
    }
    b.st(MemSpace::Global, Width::W32, addr, acc, 0);
    Module::new(b.finish())
}

#[test]
fn analytic_bound_never_prunes_the_exhaustive_winner() {
    let slack = u128::from(BanditConfig::default().prune_slack_pct);
    let mut rng = 0x0B0_0575_u64;
    let mut instances = 0u32;
    while instances < 50 {
        let dev = if splitmix64(&mut rng).is_multiple_of(2) {
            DeviceSpec::gtx680()
        } else {
            DeviceSpec::c2075()
        };
        let block = [32u32, 64, 128][(splitmix64(&mut rng) % 3) as usize];
        let grid = (splitmix64(&mut rng) % 24 + 2) as u32;
        let live = (splitmix64(&mut rng) % 36 + 4) as usize;
        let module = kernel(live);
        let orion = Orion::new(dev.clone(), block);
        let Ok(ck) = orion.compile(&module) else { continue };
        // pieces = 1: the split axis re-measures the same work in
        // slices, so the occupancy × cache lattice is where bound
        // soundness is at stake.
        let Ok(space) = CandidateSpace::enumerate(
            &dev,
            block,
            &module,
            ck.direction,
            grid,
            SplitConfig { pieces: 1, ..SplitConfig::default() },
        ) else {
            continue;
        };
        if space.arms.len() < 2 {
            continue;
        }
        instances += 1;

        let launch = Launch { grid, block };
        let ctx = BoundCtx::new(block, grid, dev.num_sms, dev.warp_size);
        let bounds: Vec<u64> =
            space.arms.iter().map(|a| analytic_bound(&a.version, &ctx)).collect();
        let measured: Vec<u64> = space
            .arms
            .iter()
            .map(|arm| {
                let mut global = vec![0u8; 4 * (grid as usize) * (block as usize)];
                let opts = LaunchOptions {
                    extra_smem_per_block: arm.version.extra_smem,
                    ..LaunchOptions::default()
                };
                let opts = match arm.cache_config {
                    Some(c) => opts.with_cache_config(c),
                    None => opts,
                };
                run_launch_opts(&dev, &arm.version.machine, launch, &[0], &mut global, opts)
                    .unwrap_or_else(|e| panic!("arm {} failed: {e}", arm.version.label))
                    .cycles
            })
            .collect();

        let winner =
            (0..space.arms.len()).min_by_key(|&i| (measured[i], i)).expect("non-empty space");
        let best_bound = u128::from(*bounds.iter().min().expect("non-empty bounds"));
        let limit = u64::try_from(best_bound * (100 + slack) / 100).unwrap_or(u64::MAX);
        assert!(
            bounds[winner] <= limit,
            "instance {instances} ({} sms, block {block}, grid {grid}, live {live}): \
             exhaustive winner `{}` (measured {} cycles) has bound {} > prune limit {} \
             (best bound {best_bound}, slack {slack}%) — pruning would drop the true best arm.\n\
             bounds: {bounds:?}\nmeasured: {measured:?}",
            dev.num_sms,
            space.arms[winner].version.label,
            measured[winner],
            bounds[winner],
            limit,
        );
    }
}
