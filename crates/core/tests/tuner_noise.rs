//! Property-style robustness tests for the runtime tuner: across a
//! sweep of RNG seeds, ±5% injected timing noise must not destabilize
//! convergence, and a quarantined version must never be finalized.

use orion_alloc::realize::AllocReport;
use orion_core::compiler::{CompiledKernel, Direction, KernelVersion};
use orion_core::resilient::{resilient_tune_loop, ResiliencePolicy};
use orion_core::runtime::DynamicTuner;
use orion_kir::mir::MModule;
use orion_kir::types::FuncId;

fn fake_version(warps: u32, fail_safe: bool) -> KernelVersion {
    KernelVersion {
        machine: MModule {
            funcs: vec![],
            entry: FuncId(0),
            regs_per_thread: 16,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 0,
            user_smem_bytes: 0,
            static_stack_moves: 0,
        },
        target_warps: warps,
        achieved_warps: warps,
        occupancy: f64::from(warps) / 48.0,
        extra_smem: 0,
        report: AllocReport {
            kernel_max_live: 0,
            regs_per_thread: 16,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 0,
            static_moves: 0,
            per_func: vec![],
        },
        fail_safe,
        label: format!("occ={warps}{}", if fail_safe { "-fs" } else { "" }),
    }
}

fn fake_compiled(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
    let mut versions: Vec<KernelVersion> =
        warp_levels.iter().map(|&w| fake_version(w, false)).collect();
    versions.push(fake_version(4, true));
    CompiledKernel {
        tuning_order: (0..warp_levels.len()).collect(),
        versions,
        direction,
        original: 0,
        max_live: 40,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A multiplicative noise factor in `[1 - amp, 1 + amp)`.
fn noisy(state: &mut u64, base: u64, amp: f64) -> u64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    let factor = 1.0 + (u * 2.0 - 1.0) * amp;
    ((base as f64 * factor) as u64).max(1)
}

/// ±5% timing noise across 50 seeds: the resilient walk (median-of-3
/// with outlier rejection) must always land within 5% of the true-best
/// version's time. The bell-shaped profile has a 4% runner-up gap, so
/// a single noisy sample could flip a naive comparison.
#[test]
fn convergence_is_stable_under_5pct_noise() {
    let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
    let base = [120u64, 100, 88, 92, 105];
    let best = *base.iter().min().unwrap() as f64;
    let policy = ResiliencePolicy::default();
    for seed in 0..50u64 {
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
        let out = resilient_tune_loop("noisy", &ck, 60, 0.02, &policy, |v| {
            let i = ck.index_of(&v.label).unwrap();
            Ok(noisy(&mut rng, base[i], 0.05))
        })
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let picked = base[out.selected] as f64;
        assert!(
            picked / best - 1.0 <= 0.05,
            "seed {seed}: picked version {} ({picked} cycles) is more than 5% off best {best}",
            out.selected
        );
    }
}

/// Across 50 seeds with a randomly chosen version quarantined at a
/// random point of the walk, the tuner must never finalize (or keep
/// running) the quarantined version.
#[test]
fn never_finalizes_a_quarantined_version() {
    let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
    // One entry per version, including the trailing fail-safe: a
    // fallback after quarantining a finalized pick selects index 5.
    let base = [120u64, 100, 88, 92, 105, 140];
    for seed in 0..50u64 {
        let mut rng = seed ^ 0x5eed;
        let victim = (splitmix64(&mut rng) % 5) as usize;
        let kill_at = splitmix64(&mut rng) % 8;
        let mut tuner = DynamicTuner::new(&ck, 0.02);
        for step in 0..40u64 {
            if step == kill_at {
                tuner.quarantine(victim);
            }
            if tuner.all_quarantined() {
                break;
            }
            let v = tuner.select();
            if step >= kill_at {
                assert_ne!(v, victim, "seed {seed}: selected the quarantined version");
            }
            tuner.record(noisy(&mut rng, base[v], 0.05));
        }
        if let Some(f) = tuner.finalized() {
            assert_ne!(f, victim, "seed {seed}: finalized the quarantined version");
        }
        assert!(tuner.is_quarantined(victim));
    }
}

/// Zero noise must reproduce the plain tuner's pick exactly — the
/// robust measurement path is a no-op on clean data.
#[test]
fn noise_free_resilient_walk_matches_plain_tuner() {
    let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
    let base = [120u64, 100, 88, 92, 105];
    let idx = |v: &KernelVersion| ck.index_of(&v.label).unwrap();
    let plain = orion_core::runtime::tune_loop::<std::convert::Infallible>(&ck, 60, 0.02, |v| {
        Ok(base[idx(v)])
    })
    .unwrap();
    let policy = ResiliencePolicy::default();
    let resilient =
        resilient_tune_loop("clean", &ck, 60, 0.02, &policy, |v| Ok(base[idx(v)])).unwrap();
    assert_eq!(plain.selected, resilient.selected);
}
