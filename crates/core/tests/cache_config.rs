//! Capacity/eviction/coalescing behavior of the process-global compile
//! cache.
//!
//! Lives in its own integration-test binary (one process, one cache) so
//! the counters are not raced by the crate's unit tests. The whole
//! sequence is one test function for the same reason: the harness runs
//! test functions concurrently within a binary.

use orion_alloc::realize::{AllocOptions, SlotBudget};
use orion_core::cache::{self, CacheConfig, CACHE_CAPACITY, CACHE_SHARDS};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

fn module(tag: i64) -> Module {
    let mut b = FunctionBuilder::kernel("cfg");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, a, 0);
    let y = b.iadd(x, Operand::Imm(tag)); // distinct fingerprint per tag
    b.st(MemSpace::Global, Width::W32, a, y, 0);
    Module::new(b.finish())
}

fn alloc(tag: i64) {
    cache::allocate_cached(
        &module(tag),
        SlotBudget { reg_slots: 8, smem_slots: 0 },
        &AllocOptions::default(),
    )
    .expect("alloc");
}

#[test]
fn capacity_bounds_entries_and_counts_evictions() {
    assert_eq!(cache::config(), CacheConfig::default());
    assert_eq!(cache::config().capacity, CACHE_CAPACITY);
    assert_eq!(cache::config().shards, CACHE_SHARDS);

    // A single stripe gives strict global FIFO order, which the exact
    // eviction assertions below rely on.
    cache::reset();
    cache::configure(CacheConfig { capacity: 3, shards: 1 });
    for tag in 0..5 {
        alloc(tag);
    }
    let st = cache::stats();
    assert_eq!(st.entries, 3, "{st:?}");
    assert_eq!(st.misses, 5, "{st:?}");
    assert_eq!(st.evictions, 2, "{st:?}");
    assert_eq!(st.per_shard.len(), 1, "{st:?}");
    assert_eq!(st.per_shard[0].entries, 3, "{st:?}");

    // FIFO: tags 0 and 1 were evicted, tag 4 is resident.
    let before = cache::stats();
    alloc(4);
    alloc(0);
    let st = cache::stats();
    assert_eq!(st.hits, before.hits + 1, "{st:?}");
    assert_eq!(st.misses, before.misses + 1, "{st:?}");

    // Shrinking evicts down immediately.
    cache::configure(CacheConfig { capacity: 1, shards: 1 });
    assert_eq!(cache::stats().entries, 1);

    // Capacity 0 disables retention: repeat allocations all miss.
    cache::configure(CacheConfig { capacity: 0, shards: 1 });
    assert_eq!(cache::stats().entries, 0);
    let before = cache::stats();
    alloc(7);
    alloc(7);
    let st = cache::stats();
    assert_eq!(st.misses, before.misses + 2, "{st:?}");
    assert_eq!(st.hits, before.hits, "{st:?}");
    assert_eq!(st.entries, 0, "{st:?}");

    // Reset keeps the configured capacity but zeroes counters.
    cache::configure(CacheConfig { capacity: 2, shards: 1 });
    cache::reset();
    let st = cache::stats();
    assert_eq!((st.hits, st.misses, st.evictions, st.entries), (0, 0, 0, 0));
    assert_eq!(cache::config().capacity, 2);

    // Re-sharding migrates resident entries instead of dropping them,
    // and keeps lifetime counters.
    cache::reset();
    cache::configure(CacheConfig { capacity: 64, shards: 1 });
    for tag in 0..6 {
        alloc(tag);
    }
    let before = cache::stats();
    cache::configure(CacheConfig { capacity: 64, shards: 4 });
    let st = cache::stats();
    assert_eq!(st.per_shard.len(), 4, "{st:?}");
    assert_eq!(st.entries, before.entries, "{st:?}");
    assert_eq!(st.misses, before.misses, "{st:?}");
    // Every migrated entry still hits.
    for tag in 0..6 {
        alloc(tag);
    }
    let after = cache::stats();
    assert_eq!(after.hits, st.hits + 6, "{after:?}");

    // Concurrent cold-key requests coalesce onto one allocation:
    // exactly 1 miss and N-1 hits, whatever the thread interleaving.
    cache::reset();
    cache::configure(CacheConfig::default());
    let m = module(99);
    let before = cache::stats();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let m = &m;
            scope.spawn(move || {
                cache::allocate_cached(
                    m,
                    SlotBudget { reg_slots: 8, smem_slots: 0 },
                    &AllocOptions::default(),
                )
                .expect("alloc");
            });
        }
    });
    let d = cache::stats().delta_since(&before);
    assert_eq!(d.misses, 1, "{d:?}");
    assert_eq!(d.hits, 5, "{d:?}");
    // Threads that arrived while the allocation was in flight count as
    // coalesced; late arrivals are plain hits. Either way, never more
    // coalesced waits than hits.
    assert!(d.coalesced <= d.hits, "{d:?}");

    // A poisoned shard (a thread panicked while holding the lock) is
    // recovered, not propagated: the next operation clears the shard,
    // counts the recovery, and subsequent compiles succeed.
    cache::reset();
    cache::configure(CacheConfig::default());
    // Quiet hook: the induced panic is part of the test, not noise.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    cache::poison_for_chaos();
    std::panic::set_hook(prior_hook);
    let before_poison = cache::stats().poison_recovered;
    assert!(before_poison >= 1, "stats() itself recovers the poisoned shard");
    for tag in 200..204 {
        alloc(tag); // compiles succeed after recovery
        alloc(tag);
    }
    let st = cache::stats();
    assert!(st.hits >= 4, "warm repeats hit again after recovery: {st:?}");
    assert_eq!(st.poison_recovered, before_poison, "one poison event, one recovery");
    // reset() preserves the resilience counter.
    cache::reset();
    assert_eq!(cache::stats().poison_recovered, before_poison);

    // Leave the cache in its default configuration for any test binary
    // reusing the process (none today, but cheap insurance).
    cache::reset();
    cache::configure(CacheConfig::default());
}
