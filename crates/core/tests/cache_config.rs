//! Capacity/eviction behavior of the process-global compile cache.
//!
//! Lives in its own integration-test binary (one process, one cache) so
//! the counters are not raced by the crate's unit tests.

use orion_alloc::realize::{AllocOptions, SlotBudget};
use orion_core::cache::{self, CacheConfig, CACHE_CAPACITY};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

fn module(tag: i64) -> Module {
    let mut b = FunctionBuilder::kernel("cfg");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, a, 0);
    let y = b.iadd(x, Operand::Imm(tag)); // distinct fingerprint per tag
    b.st(MemSpace::Global, Width::W32, a, y, 0);
    Module::new(b.finish())
}

fn alloc(tag: i64) {
    cache::allocate_cached(
        &module(tag),
        SlotBudget { reg_slots: 8, smem_slots: 0 },
        &AllocOptions::default(),
    )
    .expect("alloc");
}

#[test]
fn capacity_bounds_entries_and_counts_evictions() {
    assert_eq!(cache::config(), CacheConfig::default());
    assert_eq!(cache::config().capacity, CACHE_CAPACITY);

    cache::reset();
    cache::configure(CacheConfig { capacity: 3 });
    for tag in 0..5 {
        alloc(tag);
    }
    let st = cache::stats();
    assert_eq!(st.entries, 3, "{st:?}");
    assert_eq!(st.misses, 5, "{st:?}");
    assert_eq!(st.evictions, 2, "{st:?}");

    // FIFO: tags 0 and 1 were evicted, tag 4 is resident.
    let before = cache::stats();
    alloc(4);
    alloc(0);
    let st = cache::stats();
    assert_eq!(st.hits, before.hits + 1, "{st:?}");
    assert_eq!(st.misses, before.misses + 1, "{st:?}");

    // Shrinking evicts down immediately.
    cache::configure(CacheConfig { capacity: 1 });
    assert_eq!(cache::stats().entries, 1);

    // Capacity 0 disables retention: repeat allocations all miss.
    cache::configure(CacheConfig { capacity: 0 });
    assert_eq!(cache::stats().entries, 0);
    let before = cache::stats();
    alloc(7);
    alloc(7);
    let st = cache::stats();
    assert_eq!(st.misses, before.misses + 2, "{st:?}");
    assert_eq!(st.hits, before.hits, "{st:?}");
    assert_eq!(st.entries, 0, "{st:?}");

    // Reset keeps the configured capacity but zeroes counters.
    cache::configure(CacheConfig { capacity: 2 });
    cache::reset();
    let st = cache::stats();
    assert_eq!((st.hits, st.misses, st.evictions, st.entries), (0, 0, 0, 0));
    assert_eq!(cache::config().capacity, 2);
}
