//! Equivalence suite: the legacy closure entry points —
//! [`orion_core::runtime::tune_loop`] and
//! [`orion_core::resilient::resilient_tune_loop`] — are now thin
//! drivers over [`orion_core::session::TuningSession`]. These tests pin
//! them **bit-equal** (full `PartialEq` on outcomes, decision logs and
//! errors included) to the frozen pre-refactor loops preserved in
//! [`orion_core::reference`], across clean, noisy, and fault-injected
//! closures, both tuning directions, and the degenerate shapes (zero
//! iterations, single candidate, every candidate dead).
//!
//! The closures are deterministic functions of a seed, so the reference
//! and live runs see the *same* measurement stream if and only if they
//! issue the same sequence of launches — which is exactly the property
//! being pinned.

use orion_alloc::realize::AllocReport;
use orion_core::compiler::{CompiledKernel, Direction, KernelVersion};
use orion_core::error::OrionError;
use orion_core::reference;
use orion_core::resilient::{resilient_tune_loop, ResiliencePolicy};
use orion_core::runtime::tune_loop;
use orion_gpusim::exec::SimError;
use orion_kir::mir::MModule;
use orion_kir::types::FuncId;

fn fake_version(warps: u32, fail_safe: bool) -> KernelVersion {
    KernelVersion {
        machine: MModule {
            funcs: vec![],
            entry: FuncId(0),
            regs_per_thread: 16,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 0,
            user_smem_bytes: 0,
            static_stack_moves: 0,
        },
        target_warps: warps,
        achieved_warps: warps,
        occupancy: f64::from(warps) / 48.0,
        extra_smem: 0,
        report: AllocReport {
            kernel_max_live: 0,
            regs_per_thread: 16,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 0,
            static_moves: 0,
            per_func: vec![],
        },
        fail_safe,
        label: format!("occ={warps}{}", if fail_safe { "-fs" } else { "" }),
    }
}

fn fake_compiled(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
    let mut versions: Vec<KernelVersion> =
        warp_levels.iter().map(|&w| fake_version(w, false)).collect();
    versions.push(fake_version(4, true));
    CompiledKernel {
        tuning_order: (0..warp_levels.len()).collect(),
        versions,
        direction,
        original: 0,
        max_live: 40,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A multiplicative noise factor in `[1 - amp, 1 + amp)`.
fn noisy(state: &mut u64, base: u64, amp: f64) -> u64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    let factor = 1.0 + (u * 2.0 - 1.0) * amp;
    ((base as f64 * factor) as u64).max(1)
}

/// Deterministic per-version base times: a bell-ish profile keyed off
/// the version index so every candidate is distinct and the direction
/// of improvement depends on the profile, not the index order.
const BASE: [u64; 6] = [120, 100, 88, 92, 105, 140];

/// A seeded measurement closure: per-mille fault rates drawn *before*
/// the timing draw so the RNG stream is identical for both loops.
///
/// `transient`, `hang`, `resource` are drawn independently in that
/// order; a surviving draw returns ±5% noisy cycles.
fn faulty_run<'c>(
    ck: &'c CompiledKernel,
    seed: u64,
    transient_pm: u64,
    hang_pm: u64,
    resource_pm: u64,
) -> impl FnMut(&KernelVersion) -> Result<u64, OrionError> + 'c {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x0510_c0de;
    move |v: &KernelVersion| {
        let i = ck.index_of(&v.label).unwrap();
        if splitmix64(&mut rng) % 1000 < transient_pm {
            return Err(SimError::TransientLaunchFailure { code: 0x70_0001 }.into());
        }
        if splitmix64(&mut rng) % 1000 < hang_pm {
            return Err(SimError::Watchdog { budget: 1_000_000 }.into());
        }
        if splitmix64(&mut rng) % 1000 < resource_pm {
            return Err(
                SimError::ResourceExceeded { detail: format!("injected on {}", v.label) }.into()
            );
        }
        Ok(noisy(&mut rng, BASE[i], 0.05))
    }
}

const DIRECTIONS: [Direction; 2] = [Direction::Increasing, Direction::Decreasing];

#[test]
fn plain_loop_is_bit_identical_to_reference_on_clean_runs() {
    for dir in DIRECTIONS {
        for iterations in [0u32, 1, 3, 10, 40] {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let idx = |v: &KernelVersion| ck.index_of(&v.label).unwrap();
            let live =
                tune_loop::<std::convert::Infallible>(&ck, iterations, 0.02, |v| Ok(BASE[idx(v)]))
                    .unwrap();
            let oracle =
                reference::tune_loop::<std::convert::Infallible>(&ck, iterations, 0.02, |v| {
                    Ok(BASE[idx(v)])
                })
                .unwrap();
            assert_eq!(live, oracle, "dir {dir:?}, {iterations} iterations");
        }
    }
}

#[test]
fn plain_loop_is_bit_identical_to_reference_under_noise() {
    for dir in DIRECTIONS {
        for seed in 0..40u64 {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let idx = |v: &KernelVersion| ck.index_of(&v.label).unwrap();
            let mut rng_a = seed ^ 0xab5e;
            let live = tune_loop::<std::convert::Infallible>(&ck, 30, 0.02, |v| {
                Ok(noisy(&mut rng_a, BASE[idx(v)], 0.05))
            })
            .unwrap();
            let mut rng_b = seed ^ 0xab5e;
            let oracle = reference::tune_loop::<std::convert::Infallible>(&ck, 30, 0.02, |v| {
                Ok(noisy(&mut rng_b, BASE[idx(v)], 0.05))
            })
            .unwrap();
            assert_eq!(live, oracle, "dir {dir:?}, seed {seed}");
        }
    }
}

#[test]
fn plain_loop_propagates_the_same_error_at_the_same_point() {
    let ck = fake_compiled(&[8, 16, 24, 32], Direction::Increasing);
    let fail_at = 4u32;
    let run = |calls: &mut u32, v: &KernelVersion| -> Result<u64, OrionError> {
        *calls += 1;
        if *calls > fail_at {
            return Err(SimError::Deadlock.into());
        }
        Ok(BASE[ck.index_of(&v.label).unwrap()])
    };
    let mut a = 0;
    let live = tune_loop(&ck, 20, 0.02, |v| run(&mut a, v));
    let mut b = 0;
    let oracle = reference::tune_loop(&ck, 20, 0.02, |v| run(&mut b, v));
    assert_eq!(live.unwrap_err(), oracle.unwrap_err());
    assert_eq!(a, b, "both loops issued the same number of launches before the error");
}

#[test]
fn resilient_loop_is_bit_identical_to_reference_on_clean_runs() {
    let policy = ResiliencePolicy::default();
    for dir in DIRECTIONS {
        for iterations in [0u32, 1, 5, 25, 80] {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let idx = |v: &KernelVersion| ck.index_of(&v.label).unwrap();
            let live =
                resilient_tune_loop("eq", &ck, iterations, 0.02, &policy, |v| Ok(BASE[idx(v)]))
                    .unwrap();
            let oracle =
                reference::resilient_tune_loop("eq", &ck, iterations, 0.02, &policy, |v| {
                    Ok(BASE[idx(v)])
                })
                .unwrap();
            assert_eq!(live, oracle, "dir {dir:?}, {iterations} iterations");
        }
    }
}

#[test]
fn resilient_loop_is_bit_identical_to_reference_under_noise() {
    let policy = ResiliencePolicy::default();
    for dir in DIRECTIONS {
        for seed in 0..40u64 {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let live =
                resilient_tune_loop("eq", &ck, 60, 0.02, &policy, faulty_run(&ck, seed, 0, 0, 0))
                    .unwrap();
            let oracle = reference::resilient_tune_loop(
                "eq",
                &ck,
                60,
                0.02,
                &policy,
                faulty_run(&ck, seed, 0, 0, 0),
            )
            .unwrap();
            assert_eq!(live, oracle, "dir {dir:?}, seed {seed}");
        }
    }
}

/// The full gauntlet: transient launch failures (retried with backoff),
/// hangs and resource exhaustion (strikes → quarantine), and ±5% timing
/// noise, across both directions and many seeds. Every field of the
/// outcome — selection, per-iteration trace, decision log, stats —
/// must match the frozen loop bit for bit; when a run dies, the error
/// must match too.
#[test]
fn resilient_loop_is_bit_identical_to_reference_under_faults() {
    let policy = ResiliencePolicy::default();
    for dir in DIRECTIONS {
        for seed in 0..60u64 {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let live = resilient_tune_loop(
                "eq",
                &ck,
                60,
                0.02,
                &policy,
                faulty_run(&ck, seed, 80, 30, 30),
            );
            let oracle = reference::resilient_tune_loop(
                "eq",
                &ck,
                60,
                0.02,
                &policy,
                faulty_run(&ck, seed, 80, 30, 30),
            );
            assert_eq!(live, oracle, "dir {dir:?}, seed {seed}");
        }
    }
}

/// Saturating fault pressure: every seed quarantines candidates; some
/// runs lose every version. Ok and Err outcomes alike must be
/// bit-identical, including the `AllCandidatesFailed` context chain.
#[test]
fn resilient_loop_matches_reference_when_candidates_die() {
    let policy = ResiliencePolicy::default();
    let mut died = 0u32;
    for seed in 0..40u64 {
        let ck = fake_compiled(&[8, 16, 24], Direction::Increasing);
        let live = resilient_tune_loop(
            "storm",
            &ck,
            40,
            0.02,
            &policy,
            faulty_run(&ck, seed, 100, 300, 300),
        );
        let oracle = reference::resilient_tune_loop(
            "storm",
            &ck,
            40,
            0.02,
            &policy,
            faulty_run(&ck, seed, 100, 300, 300),
        );
        assert_eq!(live, oracle, "seed {seed}");
        if live.is_err() {
            died += 1;
        }
    }
    assert!(died > 0, "the storm rates must kill at least one run for this test to bite");
}

#[test]
fn single_candidate_kernels_match() {
    let policy = ResiliencePolicy::default();
    for dir in DIRECTIONS {
        let ck = fake_compiled(&[16], dir);
        let idx = |v: &KernelVersion| ck.index_of(&v.label).unwrap();
        let live =
            tune_loop::<std::convert::Infallible>(&ck, 12, 0.02, |v| Ok(BASE[idx(v)])).unwrap();
        let oracle =
            reference::tune_loop::<std::convert::Infallible>(&ck, 12, 0.02, |v| Ok(BASE[idx(v)]))
                .unwrap();
        assert_eq!(live, oracle, "plain, dir {dir:?}");
        for seed in 0..10u64 {
            let live = resilient_tune_loop(
                "solo",
                &ck,
                12,
                0.02,
                &policy,
                faulty_run(&ck, seed, 50, 20, 20),
            );
            let oracle = reference::resilient_tune_loop(
                "solo",
                &ck,
                12,
                0.02,
                &policy,
                faulty_run(&ck, seed, 50, 20, 20),
            );
            assert_eq!(live, oracle, "resilient, dir {dir:?}, seed {seed}");
        }
    }
}

/// Non-default policies exercise different retry/strike/sampling
/// geometry; the equivalence must be policy-independent.
#[test]
fn resilient_loop_matches_reference_across_policies() {
    let policies = [
        ResiliencePolicy { max_retries: 0, ..ResiliencePolicy::default() },
        ResiliencePolicy { quarantine_strikes: 1, ..ResiliencePolicy::default() },
        ResiliencePolicy { samples: 1, ..ResiliencePolicy::default() },
        ResiliencePolicy { samples: 5, quarantine_strikes: 2, ..ResiliencePolicy::default() },
    ];
    for policy in &policies {
        for seed in 0..15u64 {
            let ck = fake_compiled(&[8, 16, 24, 32], Direction::Decreasing);
            let live = resilient_tune_loop(
                "pol",
                &ck,
                50,
                0.02,
                policy,
                faulty_run(&ck, seed, 60, 25, 25),
            );
            let oracle = reference::resilient_tune_loop(
                "pol",
                &ck,
                50,
                0.02,
                policy,
                faulty_run(&ck, seed, 60, 25, 25),
            );
            assert_eq!(live, oracle, "policy {policy:?}, seed {seed}");
        }
    }
}
