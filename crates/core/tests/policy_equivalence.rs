//! Policy-level equivalence and determinism suite (ISSUE 10).
//!
//! The decision core of [`orion_core::session::TuningSession`] now
//! lives behind [`orion_core::policy::SearchPolicy`]. These tests pin
//! the refactor at the *policy seam*:
//!
//! * A session explicitly constructed with
//!   [`PolicyKind::PaperWalk`] is **bit-equal** to the frozen
//!   pre-refactor loops in [`orion_core::reference`] across clean,
//!   noisy, and fault-injected measurement streams — the default
//!   policy is the paper's exact Figure 9 walk, not an approximation.
//! * A session constructed with [`PolicyKind::Bandit`] is a
//!   deterministic function of its seed: same seed, same arm sequence,
//!   same outcome, bit for bit — including through the service at any
//!   worker count.
//!
//! The closures are deterministic functions of a seed, so oracle and
//! live runs see the same measurement stream if and only if they issue
//! the same launch sequence — exactly the property being pinned.

use orion_alloc::realize::AllocReport;
use orion_core::compiler::{CompiledKernel, Direction, KernelVersion};
use orion_core::error::OrionError;
use orion_core::policy::{BanditConfig, PolicyKind};
use orion_core::reference;
use orion_core::resilient::{ResiliencePolicy, ResilientOutcome};
use orion_core::runtime::{TuneOutcome, TuneReason};
use orion_core::session::{SessionMode, SessionStep, TuningSession};
use orion_gpusim::exec::SimError;
use orion_kir::mir::MModule;
use orion_kir::types::FuncId;

fn fake_version(warps: u32, fail_safe: bool) -> KernelVersion {
    KernelVersion {
        machine: MModule {
            funcs: vec![],
            entry: FuncId(0),
            regs_per_thread: 16,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 0,
            user_smem_bytes: 0,
            static_stack_moves: 0,
        },
        target_warps: warps,
        achieved_warps: warps,
        occupancy: f64::from(warps) / 48.0,
        extra_smem: 0,
        report: AllocReport {
            kernel_max_live: 0,
            regs_per_thread: 16,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 0,
            static_moves: 0,
            per_func: vec![],
        },
        fail_safe,
        label: format!("occ={warps}{}", if fail_safe { "-fs" } else { "" }),
    }
}

fn fake_compiled(warp_levels: &[u32], direction: Direction) -> CompiledKernel {
    let mut versions: Vec<KernelVersion> =
        warp_levels.iter().map(|&w| fake_version(w, false)).collect();
    versions.push(fake_version(4, true));
    CompiledKernel {
        tuning_order: (0..warp_levels.len()).collect(),
        versions,
        direction,
        original: 0,
        max_live: 40,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn noisy(state: &mut u64, base: u64, amp: f64) -> u64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    let factor = 1.0 + (u * 2.0 - 1.0) * amp;
    ((base as f64 * factor) as u64).max(1)
}

const BASE: [u64; 6] = [120, 100, 88, 92, 105, 140];

fn faulty_run<'c>(
    ck: &'c CompiledKernel,
    seed: u64,
    transient_pm: u64,
    hang_pm: u64,
    resource_pm: u64,
) -> impl FnMut(&KernelVersion) -> Result<u64, OrionError> + 'c {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x0510_c0de;
    move |v: &KernelVersion| {
        let i = ck.index_of(&v.label).unwrap();
        if splitmix64(&mut rng) % 1000 < transient_pm {
            return Err(SimError::TransientLaunchFailure { code: 0x70_0001 }.into());
        }
        if splitmix64(&mut rng) % 1000 < hang_pm {
            return Err(SimError::Watchdog { budget: 1_000_000 }.into());
        }
        if splitmix64(&mut rng) % 1000 < resource_pm {
            return Err(
                SimError::ResourceExceeded { detail: format!("injected on {}", v.label) }.into()
            );
        }
        Ok(noisy(&mut rng, BASE[i], 0.05))
    }
}

/// Drive a simple-mode session under an explicitly requested policy —
/// the same two-call loop `tune_loop` uses, minus its default-policy
/// shortcut.
fn drive_simple(
    ck: &CompiledKernel,
    iterations: u32,
    kind: PolicyKind,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, OrionError>,
) -> Result<TuneOutcome, OrionError> {
    let mut session =
        TuningSession::with_policy("", ck, iterations, 0.02, SessionMode::Simple, kind);
    while let SessionStep::Launch(v) =
        session.next_step().expect("simple sessions never error from next_step")
    {
        let r = run(&ck.versions[v]);
        session.on_launch_result(r)?;
    }
    Ok(session.finish().into_tune_outcome())
}

/// Drive a resilient-mode session under an explicitly requested policy.
fn drive_resilient(
    ck: &CompiledKernel,
    iterations: u32,
    policy: &ResiliencePolicy,
    kind: PolicyKind,
    mut run: impl FnMut(&KernelVersion) -> Result<u64, OrionError>,
) -> Result<ResilientOutcome, OrionError> {
    let mut session = TuningSession::with_policy(
        "eq",
        ck,
        iterations,
        0.02,
        SessionMode::Resilient(*policy),
        kind,
    );
    while let SessionStep::Launch(v) = session.next_step()? {
        session.on_launch_result(run(&ck.versions[v]))?;
    }
    Ok(session.finish().into_resilient_outcome())
}

const DIRECTIONS: [Direction; 2] = [Direction::Increasing, Direction::Decreasing];

#[test]
fn paper_walk_policy_matches_reference_on_clean_runs() {
    for dir in DIRECTIONS {
        for iterations in [0u32, 1, 3, 10, 40] {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let idx = |v: &KernelVersion| ck.index_of(&v.label).unwrap();
            let live =
                drive_simple(&ck, iterations, PolicyKind::PaperWalk, |v| Ok(BASE[idx(v)])).unwrap();
            let oracle =
                reference::tune_loop::<std::convert::Infallible>(&ck, iterations, 0.02, |v| {
                    Ok(BASE[idx(v)])
                })
                .unwrap();
            assert_eq!(live, oracle, "dir {dir:?}, {iterations} iterations");
        }
    }
}

#[test]
fn paper_walk_policy_matches_reference_under_noise() {
    for dir in DIRECTIONS {
        for seed in 0..40u64 {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let live = drive_simple(&ck, 30, PolicyKind::PaperWalk, faulty_run(&ck, seed, 0, 0, 0))
                .unwrap();
            let oracle =
                reference::tune_loop(&ck, 30, 0.02, faulty_run(&ck, seed, 0, 0, 0)).unwrap();
            assert_eq!(live, oracle, "dir {dir:?}, seed {seed}");
        }
    }
}

/// The full chaos gauntlet at the policy seam: transient failures,
/// hangs, resource exhaustion, timing noise, both directions, many
/// seeds. The explicitly-requested PaperWalkPolicy must match the
/// frozen loop bit for bit — Ok and Err alike.
#[test]
fn paper_walk_policy_matches_reference_under_chaos() {
    let policy = ResiliencePolicy::default();
    for dir in DIRECTIONS {
        for seed in 0..60u64 {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], dir);
            let live = drive_resilient(
                &ck,
                60,
                &policy,
                PolicyKind::PaperWalk,
                faulty_run(&ck, seed, 80, 30, 30),
            );
            let oracle = reference::resilient_tune_loop(
                "eq",
                &ck,
                60,
                0.02,
                &policy,
                faulty_run(&ck, seed, 80, 30, 30),
            );
            assert_eq!(live, oracle, "dir {dir:?}, seed {seed}");
        }
    }
}

#[test]
fn bandit_policy_is_a_pure_function_of_its_seed() {
    for seed in [0u64, 1, 7, 1337, u64::MAX] {
        let kind = PolicyKind::Bandit(BanditConfig {
            seed,
            prune_slack_pct: u32::MAX,
            ..BanditConfig::default()
        });
        let run = || {
            let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
            drive_simple(&ck, 30, kind, faulty_run(&ck, seed ^ 0xFEED, 0, 0, 0)).unwrap()
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}

/// Chaos does not break the bandit's session invariants: every run
/// settles (or dies with the same error shape as the walk would), the
/// decision log stays coherent, and reruns are bit-identical.
#[test]
fn bandit_policy_survives_chaos_deterministically() {
    let policy = ResiliencePolicy::default();
    let kind = PolicyKind::Bandit(BanditConfig::default());
    for seed in 0..30u64 {
        let ck = fake_compiled(&[8, 16, 24, 32, 48], Direction::Increasing);
        let run = || drive_resilient(&ck, 60, &policy, kind, faulty_run(&ck, seed, 80, 30, 30));
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed} not deterministic");
        if let Ok(out) = a {
            assert!(out.selected < ck.versions.len());
            let quarantines =
                out.decisions.iter().filter(|d| d.reason == TuneReason::Quarantined).count() as u64;
            assert_eq!(out.stats.quarantined, quarantines, "stats/log divergence: {out:?}");
        }
    }
}

/// Service-level bit-equality: a batch of bandit-policy jobs produces
/// identical outcomes on a sequential (1 worker, in-flight 1) and a
/// concurrent (4 workers, unbounded) service — the PR-7/9 determinism
/// contract extends to non-default search policies.
#[test]
fn bandit_jobs_are_bit_identical_across_worker_counts() {
    use orion_core::backend::SimBackend;
    use orion_core::compiler::TuningConfig;
    use orion_core::service::{JobPolicy, KernelJob, OrionService, ServiceConfig};
    use orion_gpusim::device::DeviceSpec;
    use orion_gpusim::exec::Launch;
    use orion_kir::builder::FunctionBuilder;
    use orion_kir::function::Module;
    use orion_kir::inst::Operand;
    use orion_kir::types::{MemSpace, SpecialReg, Width};

    fn toy_module(mul: i64) -> Module {
        let mut b = FunctionBuilder::kernel("k");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let gid = b.imad(cta, nt, tid);
        let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
        let y = b.imul(x, Operand::Imm(mul));
        b.st(MemSpace::Global, Width::W32, addr, y, 0);
        Module::new(b.finish())
    }

    let batch = || -> Vec<KernelJob> {
        (1..=5)
            .map(|i| KernelJob {
                name: format!("k{i}"),
                module: toy_module(i64::from(i)),
                launch: Launch { grid: 4, block: 32 },
                params: vec![0],
                global: vec![0u8; 4 * 128],
                iterations: 6 + i,
                tuning: TuningConfig::new(32),
                policy: JobPolicy {
                    // Alternate per-job override and service default.
                    search: (i % 2 == 0).then_some(PolicyKind::Bandit(BanditConfig::default())),
                    ..JobPolicy::default()
                },
            })
            .collect()
    };
    let mk_cfg = |workers, in_flight_limit| ServiceConfig {
        workers,
        in_flight_limit,
        // The service-wide default is the bandit here; odd jobs inherit.
        search: PolicyKind::Bandit(BanditConfig { seed: 99, ..BanditConfig::default() }),
        ..ServiceConfig::default()
    };
    let seq = OrionService::new(SimBackend::new(DeviceSpec::gtx680()), mk_cfg(1, 1)).run(batch());
    let conc = OrionService::new(SimBackend::new(DeviceSpec::gtx680()), mk_cfg(4, 0)).run(batch());
    assert!(seq.all_ok() && conc.all_ok());
    assert_eq!(seq.kernels.len(), conc.kernels.len());
    for (a, b) in seq.kernels.iter().zip(&conc.kernels) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.disposition, b.disposition);
        assert_eq!(
            a.outcome.as_ref().unwrap(),
            b.outcome.as_ref().unwrap(),
            "kernel {} diverged between 1 and 4 workers",
            a.name
        );
        assert_eq!(a.metrics.cycle_domain(), b.metrics.cycle_domain());
    }
}
