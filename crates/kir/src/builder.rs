//! Ergonomic construction of IR functions.
//!
//! ```
//! use orion_kir::builder::FunctionBuilder;
//! use orion_kir::types::{MemSpace, SpecialReg, Width};
//! use orion_kir::inst::Operand;
//!
//! // out[tid] = in[tid] * 2.0
//! let mut b = FunctionBuilder::kernel("double");
//! let tid = b.mov(Operand::Special(SpecialReg::TidX));
//! let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
//! let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
//! let two = b.mov_f32(2.0);
//! let y = b.fmul(x, two);
//! let oaddr = b.imad(tid, Operand::Imm(4), Operand::Param(1));
//! b.st(MemSpace::Global, Width::W32, oaddr, y, 0);
//! let f = b.finish();
//! assert_eq!(f.num_insts(), 7);
//! ```

use crate::function::{FuncKind, Function, Terminator};
use crate::inst::{CallInfo, Cmp, Inst, Opcode, Operand};
use crate::types::{BlockId, FuncId, MemSpace, PredReg, VReg, Width};

/// Builder for a single function with a current-block cursor.
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start building a kernel.
    pub fn kernel(name: impl Into<String>) -> Self {
        FunctionBuilder { f: Function::new(name, FuncKind::Kernel), cur: BlockId(0) }
    }

    /// Start building a device function.
    pub fn device(name: impl Into<String>) -> Self {
        FunctionBuilder { f: Function::new(name, FuncKind::Device), cur: BlockId(0) }
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Create a fresh virtual register.
    pub fn vreg(&mut self, w: Width) -> VReg {
        self.f.new_vreg(w)
    }

    /// Declare a device-function parameter (in call order).
    pub fn param(&mut self, w: Width) -> VReg {
        let r = self.f.new_vreg(w);
        self.f.params.push(r);
        r
    }

    /// Create a new (empty) block; the cursor does not move.
    pub fn new_block(&mut self) -> BlockId {
        self.f.new_block()
    }

    /// Move the cursor to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Append a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.f.block_mut(self.cur).insts.push(inst);
    }

    fn emit(&mut self, op: Opcode, w: Width, srcs: Vec<Operand>) -> VReg {
        let d = self.f.new_vreg(w);
        self.push(Inst::new(op, Some(d), srcs));
        d
    }

    // ---- moves / constants ----

    /// `d = src` (32-bit unless the source register is wide).
    pub fn mov(&mut self, src: impl Into<Operand>) -> VReg {
        let src = src.into();
        let w = src.as_reg().map(|r| self.f.width(r)).unwrap_or(Width::W32);
        self.emit(Opcode::Mov, w, vec![src])
    }

    /// Materialize an f32 constant.
    pub fn mov_f32(&mut self, v: f32) -> VReg {
        self.emit(Opcode::Mov, Width::W32, vec![Operand::Imm(v.to_bits() as i64)])
    }

    /// Materialize an i32 constant.
    pub fn mov_i32(&mut self, v: i32) -> VReg {
        self.emit(Opcode::Mov, Width::W32, vec![Operand::Imm(i64::from(v))])
    }

    // ---- memory ----

    /// Load `width` bytes from `space` at `addr + offset`.
    pub fn ld(
        &mut self,
        space: MemSpace,
        width: Width,
        addr: impl Into<Operand>,
        offset: i32,
    ) -> VReg {
        self.emit(Opcode::Ld { space, width, offset }, width, vec![addr.into()])
    }

    /// Store `val` (of `width`) to `space` at `addr + offset`.
    pub fn st(
        &mut self,
        space: MemSpace,
        width: Width,
        addr: impl Into<Operand>,
        val: impl Into<Operand>,
        offset: i32,
    ) {
        self.push(Inst::new(
            Opcode::St { space, width, offset },
            None,
            vec![addr.into(), val.into()],
        ));
    }

    // ---- compare / select / predication ----

    /// Integer compare into predicate `p`.
    pub fn isetp(&mut self, cmp: Cmp, a: impl Into<Operand>, b: impl Into<Operand>, p: PredReg) {
        let mut i = Inst::new(Opcode::ISetp(cmp), None, vec![a.into(), b.into()]);
        i.pdst = Some(p);
        self.push(i);
    }

    /// Float compare into predicate `p`.
    pub fn fsetp(&mut self, cmp: Cmp, a: impl Into<Operand>, b: impl Into<Operand>, p: PredReg) {
        let mut i = Inst::new(Opcode::FSetp(cmp), None, vec![a.into(), b.into()]);
        i.pdst = Some(p);
        self.push(i);
    }

    /// `d = p ? a : b`.
    pub fn sel(&mut self, p: PredReg, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let d = self.f.new_vreg(Width::W32);
        let mut i = Inst::new(Opcode::Sel, Some(d), vec![a.into(), b.into()]);
        i.sel_pred = Some(p);
        self.push(i);
        d
    }

    // ---- calls / sync ----

    /// Call `callee` with `args`; `ret_widths` declares the expected
    /// return value widths and fresh registers are returned for them.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>, ret_widths: &[Width]) -> Vec<VReg> {
        let rets: Vec<VReg> = ret_widths.iter().map(|&w| self.f.new_vreg(w)).collect();
        let mut i = Inst::new(Opcode::Call(callee), None, vec![]);
        i.call = Some(CallInfo { args, rets: rets.clone() });
        self.push(i);
        rets
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) {
        self.push(Inst::new(Opcode::Bar, None, vec![]));
    }

    // ---- wide values ----

    /// Extract 32-bit word `lane` of a wide register.
    pub fn unpack(&mut self, src: VReg, lane: u8) -> VReg {
        self.emit(Opcode::Unpack { lane }, Width::W32, vec![src.into()])
    }

    /// Wide value equal to `src` with word `lane` replaced by `word`.
    pub fn pack(&mut self, src: VReg, word: impl Into<Operand>, lane: u8) -> VReg {
        let w = self.f.width(src);
        self.emit(Opcode::Pack { lane }, w, vec![src.into(), word.into()])
    }

    // ---- terminators ----

    /// Terminate the current block with a jump and move the cursor to the
    /// target if it has no terminator yet (the caller usually switches
    /// explicitly).
    pub fn jump(&mut self, target: BlockId) {
        self.f.block_mut(self.cur).term = Terminator::Jump(target);
    }

    /// Conditional branch terminator on predicate `p`.
    pub fn branch(&mut self, p: PredReg, neg: bool, then_bb: BlockId, else_bb: BlockId) {
        self.f.block_mut(self.cur).term = Terminator::Branch { pred: p, neg, then_bb, else_bb };
    }

    /// `Ret` terminator with the device function's return values.
    pub fn ret(&mut self, vals: Vec<VReg>) {
        assert_eq!(self.f.kind, FuncKind::Device, "ret in kernel");
        self.f.rets = vals;
        self.f.block_mut(self.cur).term = Terminator::Ret;
    }

    /// `Exit` terminator (kernels).
    pub fn exit(&mut self) {
        self.f.block_mut(self.cur).term = Terminator::Exit;
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.f
    }

    /// Access the function under construction.
    pub fn func(&self) -> &Function {
        &self.f
    }
}

macro_rules! binops {
    ($($(#[$doc:meta])* $name:ident => $op:expr, $w:expr;)*) => {
        impl FunctionBuilder {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
                    self.emit($op, $w, vec![a.into(), b.into()])
                }
            )*
        }
    };
}

binops! {
    /// 32-bit integer add.
    iadd => Opcode::IAdd, Width::W32;
    /// 32-bit integer subtract.
    isub => Opcode::ISub, Width::W32;
    /// 32-bit integer multiply (low word).
    imul => Opcode::IMul, Width::W32;
    /// 32-bit integer minimum.
    imin => Opcode::IMin, Width::W32;
    /// 32-bit integer maximum.
    imax => Opcode::IMax, Width::W32;
    /// Logical shift left.
    shl => Opcode::Shl, Width::W32;
    /// Logical shift right.
    shr => Opcode::Shr, Width::W32;
    /// Bitwise and.
    and => Opcode::And, Width::W32;
    /// Bitwise or.
    or => Opcode::Or, Width::W32;
    /// Bitwise xor.
    xor => Opcode::Xor, Width::W32;
    /// f32 add.
    fadd => Opcode::FAdd, Width::W32;
    /// f32 subtract.
    fsub => Opcode::FSub, Width::W32;
    /// f32 multiply.
    fmul => Opcode::FMul, Width::W32;
    /// f32 minimum.
    fmin => Opcode::FMin, Width::W32;
    /// f32 maximum.
    fmax => Opcode::FMax, Width::W32;
    /// f64 add (W64 registers).
    dadd => Opcode::DAdd, Width::W64;
    /// f64 multiply (W64 registers).
    dmul => Opcode::DMul, Width::W64;
}

macro_rules! triops {
    ($($(#[$doc:meta])* $name:ident => $op:expr, $w:expr;)*) => {
        impl FunctionBuilder {
            $(
                $(#[$doc])*
                pub fn $name(
                    &mut self,
                    a: impl Into<Operand>,
                    b: impl Into<Operand>,
                    c: impl Into<Operand>,
                ) -> VReg {
                    self.emit($op, $w, vec![a.into(), b.into(), c.into()])
                }
            )*
        }
    };
}

triops! {
    /// `d = a*b + c` (integer).
    imad => Opcode::IMad, Width::W32;
    /// `d = a*b + c` (f32 fused).
    ffma => Opcode::FFma, Width::W32;
    /// `d = a*b + c` (f64 fused, W64 registers).
    dfma => Opcode::DFma, Width::W64;
}

macro_rules! unops {
    ($($(#[$doc:meta])* $name:ident => $op:expr, $w:expr;)*) => {
        impl FunctionBuilder {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, a: impl Into<Operand>) -> VReg {
                    self.emit($op, $w, vec![a.into()])
                }
            )*
        }
    };
}

unops! {
    /// Bitwise not.
    not => Opcode::Not, Width::W32;
    /// f32 negate.
    fneg => Opcode::FNeg, Width::W32;
    /// f32 absolute value.
    fabs => Opcode::FAbs, Width::W32;
    /// f32 approximate reciprocal.
    frcp => Opcode::FRcp, Width::W32;
    /// f32 square root.
    fsqrt => Opcode::FSqrt, Width::W32;
    /// i32 -> f32 conversion.
    i2f => Opcode::I2F, Width::W32;
    /// f32 -> i32 conversion (truncating).
    f2i => Opcode::F2I, Width::W32;
}

/// Builds the float-division device function used by scientific
/// workloads. On real GPUs `a / b` compiles to a *call* to an intrinsic
/// (§3.2 of the paper); this reproduces that: one Newton-Raphson
/// refinement around `FRcp`.
pub fn build_fdiv_device() -> Function {
    let mut b = FunctionBuilder::device("__fdiv_rn");
    let a = b.param(Width::W32);
    let d = b.param(Width::W32);
    let r0 = b.frcp(d);
    // r1 = r0 * (2 - d*r0)
    let two = b.mov_f32(2.0);
    let dr = b.fmul(d, r0);
    let e = b.fsub(two, dr);
    let r1 = b.fmul(r0, e);
    let q = b.fmul(a, r1);
    b.ret(vec![q]);
    b.finish()
}

/// Append-only helper to terminate straight-line kernels: ensures the
/// current block is `Exit` terminated (the default for new kernels).
pub fn seal_kernel(b: &mut FunctionBuilder) {
    b.exit();
}

/// A tiny convenience for structured loops: emits
/// `for (i = start; i < end; i += step) body(builder, i)`.
///
/// The loop counter is a fresh register; `body` receives the builder and
/// the counter. Uses predicate `p` for the back-edge test.
pub fn build_counted_loop(
    b: &mut FunctionBuilder,
    start: impl Into<Operand>,
    end: impl Into<Operand>,
    step: i32,
    p: PredReg,
    body: impl FnOnce(&mut FunctionBuilder, VReg),
) {
    let end = end.into();
    let i0 = b.mov(start);
    let header = b.new_block();
    let body_bb = b.new_block();
    let exit_bb = b.new_block();
    b.jump(header);
    b.switch_to(header);
    b.isetp(Cmp::Lt, i0, end, p);
    b.branch(p, false, body_bb, exit_bb);
    b.switch_to(body_bb);
    body(b, i0);
    // i += step, loop back. Reuses the same vreg (non-SSA input is fine —
    // SSA construction renames it).
    let step_op = Operand::Imm(i64::from(step));
    b.push(Inst::new(Opcode::IAdd, Some(i0), vec![i0.into(), step_op]));
    b.jump(header);
    b.switch_to(exit_bb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Module;
    use crate::verify::verify;

    #[test]
    fn builder_emits_valid_kernel() {
        let mut b = FunctionBuilder::kernel("k");
        let t = b.mov(Operand::Special(crate::types::SpecialReg::TidX));
        let a = b.imad(t, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        let y = b.fadd(x, x);
        b.st(MemSpace::Global, Width::W32, a, y, 0);
        let m = Module::new(b.finish());
        verify(&m).unwrap();
    }

    #[test]
    fn fdiv_device_verifies() {
        let mut b = FunctionBuilder::kernel("k");
        let _ = b.mov_f32(10.0);
        let _ = b.mov_f32(4.0);
        let mut m = Module::new(b.finish());
        let fdiv = m.add_func(build_fdiv_device());
        // Rebuild kernel with a call (simplest path: new kernel).
        let mut kb = FunctionBuilder::kernel("k");
        let x = kb.mov_f32(10.0);
        let y = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x.into(), y.into()], &[Width::W32]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), q[0], 0);
        m.funcs[0] = kb.finish();
        verify(&m).unwrap();
    }

    #[test]
    fn counted_loop_verifies() {
        let mut b = FunctionBuilder::kernel("loop");
        let acc = b.mov_i32(0);
        build_counted_loop(&mut b, Operand::Imm(0), Operand::Imm(10), 1, PredReg(0), |b, i| {
            b.push(Inst::new(Opcode::IAdd, Some(acc), vec![acc.into(), i.into()]));
        });
        b.st(MemSpace::Global, Width::W32, Operand::Imm(0), acc, 0);
        b.exit();
        let m = Module::new(b.finish());
        verify(&m).unwrap();
    }

    #[test]
    fn wide_pack_unpack() {
        let mut b = FunctionBuilder::kernel("w");
        let v = b.vreg(Width::W128);
        b.push(Inst::new(Opcode::Mov, Some(v), vec![Operand::Imm(0)]));
        let lo = b.unpack(v, 0);
        let v2 = b.pack(v, lo, 3);
        b.st(MemSpace::Global, Width::W128, Operand::Imm(0), v2, 0);
        let m = Module::new(b.finish());
        verify(&m).unwrap();
    }
}
