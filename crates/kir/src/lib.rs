//! # orion-kir — kernel intermediate representation
//!
//! A SASS-like IR for the Orion occupancy-tuning reproduction
//! (Hayes et al., *Middleware 2016*). It provides:
//!
//! * typed virtual registers, including *wide* 64/96/128-bit values that
//!   must occupy consecutive aligned physical registers;
//! * functions, basic blocks, calls, barriers, and predicated execution;
//! * CFG analyses (dominators, dominance frontiers, post-dominators);
//! * pruned-SSA construction and φ-web coalescing (the paper's §3.2
//!   pipeline front half);
//! * live-variable analysis and the *max-live* metric (§3.3);
//! * an untimed reference interpreter used as the semantic oracle;
//! * the machine IR ([`mir`]) produced by the allocator and executed by
//!   the GPU simulator.
//!
//! ```
//! use orion_kir::builder::FunctionBuilder;
//! use orion_kir::function::Module;
//! use orion_kir::inst::Operand;
//! use orion_kir::interp::{Interpreter, LaunchConfig};
//! use orion_kir::types::{MemSpace, SpecialReg, Width};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::kernel("add_one");
//! let tid = b.mov(Operand::Special(SpecialReg::TidX));
//! let addr = b.imad(tid, Operand::Imm(4), Operand::Param(0));
//! let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
//! let y = b.iadd(x, Operand::Imm(1));
//! b.st(MemSpace::Global, Width::W32, addr, y, 0);
//! let module = Module::new(b.finish());
//! orion_kir::verify::verify(&module)?;
//!
//! let mut global = vec![0u8; 16];
//! Interpreter::new(&module, &[0]).run(LaunchConfig { grid: 1, block: 4 }, &mut global)?;
//! assert_eq!(global[0], 1);
//! # Ok(())
//! # }
//! ```

pub mod bitset;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod function;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod mir;
pub mod mir_verify;
pub mod sem;
pub mod ssa;
pub mod types;
pub mod verify;

pub use function::{BasicBlock, Function, Module, Terminator};
pub use inst::{Cmp, Inst, Opcode, Operand};
pub use types::{BlockId, FuncId, MemSpace, PredReg, SpecialReg, VReg, Width};
