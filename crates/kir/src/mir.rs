//! Machine IR: the post-allocation program form.
//!
//! After Orion's allocator runs, every variable lives in an *on-chip
//! memory slot* (the paper's term): a physical register, a per-thread
//! private shared-memory slot, or a per-thread local-memory slot.
//! Machine instructions reference slots directly; the simulator charges
//! the appropriate access cost per slot kind (registers are free, shared
//! memory costs an on-chip access, local memory goes through the L1/L2
//! hierarchy).
//!
//! Calls at this level transfer control only — argument and return
//! passing, as well as the compressible-stack compression/restore moves,
//! have been made explicit as [`Opcode::Mov`] instructions by the
//! allocator.

use crate::function::Terminator;
use crate::inst::Opcode;
use crate::types::{BlockId, FuncId, PredReg, SpecialReg, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of storage backing a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Place {
    /// An on-chip slot in the unified register/shared-memory stack. The
    /// absolute slot index decides the physical home *per 32-bit word*:
    /// words below [`MModule::regs_per_thread`] are registers (free to
    /// access), words at or above it are per-thread private
    /// shared-memory slots (bank-interleaved, conflict-free). Deciding
    /// per word lets wide values straddle the boundary safely.
    Onchip,
    /// Per-thread local-memory slot (off-chip address space cached in
    /// L1), used for spills and the move scratch area.
    Local,
}

/// A physical slot reference: storage kind, starting 32-bit slot index,
/// and value width (wide values occupy `width.words()` consecutive slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MLoc {
    pub place: Place,
    pub slot: u16,
    pub width: Width,
}

impl MLoc {
    /// An on-chip slot (register or private shared memory, by index).
    pub fn onchip(slot: u16, width: Width) -> Self {
        MLoc { place: Place::Onchip, slot, width }
    }

    /// A local-memory slot.
    pub fn local(slot: u16, width: Width) -> Self {
        MLoc { place: Place::Local, slot, width }
    }
}

impl fmt::Display for MLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.place {
            Place::Onchip => "R",
            Place::Local => "L",
        };
        write!(f, "{p}{}", self.slot)?;
        if self.width != Width::W32 {
            write!(f, ":{}", self.width.words())?;
        }
        Ok(())
    }
}

/// Machine operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MOperand {
    Loc(MLoc),
    Imm(i64),
    Param(u8),
    Special(SpecialReg),
}

impl MOperand {
    /// The slot, if this operand is one.
    pub fn as_loc(&self) -> Option<MLoc> {
        match self {
            MOperand::Loc(l) => Some(*l),
            _ => None,
        }
    }
}

impl From<MLoc> for MOperand {
    fn from(l: MLoc) -> Self {
        MOperand::Loc(l)
    }
}

impl fmt::Display for MOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MOperand::Loc(l) => write!(f, "{l}"),
            MOperand::Imm(i) => write!(f, "{i}"),
            MOperand::Param(p) => write!(f, "c[{p}]"),
            MOperand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// A machine instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MInst {
    pub op: Opcode,
    pub dst: Option<MLoc>,
    pub pdst: Option<PredReg>,
    pub srcs: Vec<MOperand>,
    pub pred: Option<PredReg>,
    pub pred_neg: bool,
    pub sel_pred: Option<PredReg>,
    /// Marks compressible-stack traffic (compression/restore moves and
    /// spill reload/store) so ablation benches can count it.
    pub is_stack_move: bool,
}

impl MInst {
    /// A plain machine instruction.
    pub fn new(op: Opcode, dst: Option<MLoc>, srcs: Vec<MOperand>) -> Self {
        MInst {
            op,
            dst,
            pdst: None,
            srcs,
            pred: None,
            pred_neg: false,
            sel_pred: None,
            is_stack_move: false,
        }
    }

    /// A slot-to-slot move (stack compression / argument passing).
    pub fn mov(dst: MLoc, src: MLoc) -> Self {
        let mut i = MInst::new(Opcode::Mov, Some(dst), vec![src.into()]);
        i.is_stack_move = true;
        i
    }
}

impl fmt::Display for MInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "@{}{} ", if self.pred_neg { "!" } else { "" }, p)?;
        }
        if let Some(d) = self.dst {
            write!(f, "{d} = ")?;
        }
        if let Some(p) = self.pdst {
            write!(f, "{p} = ")?;
        }
        write!(f, "{:?}", self.op)?;
        for (i, s) in self.srcs.iter().enumerate() {
            write!(f, "{}{s}", if i == 0 { " " } else { ", " })?;
        }
        Ok(())
    }
}

/// A machine basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MBlock {
    pub insts: Vec<MInst>,
    pub term: Terminator,
}

/// A machine function after allocation and linking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MFunction {
    pub name: String,
    /// Absolute slot index where this function's frame begins (0 for the
    /// kernel; `B_k` of the paper for callees).
    pub frame_base: u16,
    /// Number of slots in this function's frame.
    pub frame_size: u16,
    /// Absolute slots of the parameters (callers move arguments here).
    pub param_slots: Vec<MLoc>,
    /// Absolute slots of the return values (callers read results here).
    pub ret_slots: Vec<MLoc>,
    pub blocks: Vec<MBlock>,
}

impl MFunction {
    /// Total static machine instructions.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A fully linked machine module: what the Orion compiler hands the GPU
/// driver in the paper (one "kernel binary" at a specific occupancy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MModule {
    pub funcs: Vec<MFunction>,
    pub entry: FuncId,
    /// On-chip slots backed by physical registers (the boundary index:
    /// absolute on-chip slots below this are registers). Drives occupancy.
    pub regs_per_thread: u16,
    /// Allocator-added private shared-memory slots per thread (on-chip
    /// slots at index `regs_per_thread` and above).
    pub smem_slots_per_thread: u16,
    /// Local-memory slots per thread (spill space).
    pub local_slots_per_thread: u16,
    /// User-declared shared memory per block, bytes.
    pub user_smem_bytes: u32,
    /// Count of stack-compression move instructions (static).
    pub static_stack_moves: u32,
}

impl MModule {
    /// Shared-memory bytes per block for a given block size: user arrays
    /// plus the interleaved per-thread private region.
    pub fn smem_bytes_per_block(&self, block_threads: u32) -> u32 {
        self.user_smem_bytes + u32::from(self.smem_slots_per_thread) * 4 * block_threads
    }

    /// Local-memory bytes needed per thread.
    pub fn local_bytes_per_thread(&self) -> u32 {
        u32::from(self.local_slots_per_thread) * 4
    }

    /// Shared access to a function.
    pub fn func(&self, id: FuncId) -> &MFunction {
        &self.funcs[id.0 as usize]
    }

    /// The kernel entry.
    pub fn kernel(&self) -> &MFunction {
        self.func(self.entry)
    }
}

/// Successor helper mirroring the IR-level CFG for machine blocks.
pub fn msuccessors(b: &MBlock) -> impl Iterator<Item = BlockId> + '_ {
    b.term.successors()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let l = MLoc::onchip(3, Width::W64);
        assert_eq!(l.to_string(), "R3:2");
        assert_eq!(MLoc::local(1, Width::W32).to_string(), "L1");
        let i = MInst::mov(MLoc::onchip(0, Width::W32), MLoc::local(2, Width::W32));
        assert!(i.is_stack_move);
        assert_eq!(i.to_string(), "R0 = Mov L2");
    }

    #[test]
    fn smem_footprint() {
        let m = MModule {
            funcs: vec![],
            entry: FuncId(0),
            regs_per_thread: 16,
            smem_slots_per_thread: 3,
            local_slots_per_thread: 2,
            user_smem_bytes: 1024,
            static_stack_moves: 0,
        };
        assert_eq!(m.smem_bytes_per_block(256), 1024 + 3 * 4 * 256);
        assert_eq!(m.local_bytes_per_thread(), 8);
    }
}
