//! Machine-IR verifier: the post-allocation gate of the compilation
//! pipeline.
//!
//! The allocator's lowering stage turns the paper's §3.2 plan (coloring,
//! compressed stack, optimized layout) into explicit machine code. This
//! module re-checks the lowered [`MModule`] against the invariants that
//! plan was supposed to guarantee, so a buggy pass — or a future pass
//! inserted into the pipeline — is caught at the stage boundary instead
//! of as silent memory corruption inside the simulator:
//!
//! * **Slot ranges** — every on-chip location fits below
//!   `regs_per_thread + smem_slots_per_thread`, every local-memory
//!   location below `local_slots_per_thread`, and every frame
//!   (`frame_base + frame_size`) fits in the on-chip window.
//! * **Wide-register alignment** — 64/96/128-bit values referenced by
//!   ordinary instructions sit at their hardware alignment class
//!   (pairs even, quads quad-aligned) on the *absolute* slot index.
//!   Stack-compression move chunks are exempt: a four-word unit built
//!   from four independent 32-bit webs may legally straddle any offset.
//! * **Move ordering** — within one parallel-move block (a maximal run
//!   of `is_stack_move` `Mov`s), no move reads a word that an earlier
//!   move of the same block already overwrote, unless it reads the
//!   reserved local-memory scratch area (the cycle-breaking bounce).
//!   This is exactly the contract of the allocator's sequentializer; an
//!   out-of-order restore move violates it.
//! * **Frame-base monotonicity** — the entry frame starts at slot 0 and
//!   every call targets a callee whose frame base is at or above the
//!   caller's (frames only grow downward-to-upward along call edges).
//!
//! ## Parallel-move block boundaries
//!
//! Two consecutive calls lower to `…restore moves… …compression/argument
//! moves…` with no separating instruction, so the maximal-run heuristic
//! would fuse two independent move blocks and could report a false
//! clobber (the second block legitimately re-reads slots the first one
//! restored). The allocator therefore records the exact block starts it
//! emitted in a [`MoveRuns`] table and passes it to
//! [`verify_mir_with`]; stand-alone callers of [`verify_mir`] fall back
//! to the maximal-run approximation, which is exact whenever no two
//! calls are adjacent.

use crate::inst::Opcode;
use crate::mir::{MFunction, MInst, MLoc, MModule, MOperand, Place};
use crate::types::FuncId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Tuning knobs of the MIR verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MirVerifyConfig {
    /// Local-memory slots reserved as the parallel-move scratch area;
    /// reads and writes inside it are exempt from the move-ordering
    /// check (they *are* the cycle-breaking mechanism).
    pub scratch_slots: u16,
}

impl Default for MirVerifyConfig {
    fn default() -> Self {
        // Mirrors `orion_alloc::realize::SCRATCH_SLOTS` (a W128 bounce).
        MirVerifyConfig { scratch_slots: 4 }
    }
}

/// Where in a module a verification failure was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirSite {
    /// Function name.
    pub func: String,
    /// Block index within the function.
    pub block: usize,
    /// Instruction index within the block.
    pub idx: usize,
}

impl fmt::Display for MirSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.b{}[{}]", self.func, self.block, self.idx)
    }
}

/// A named machine-IR invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum MirVerifyError {
    /// The module entry index is out of the function table.
    EntryOutOfRange { entry: FuncId, funcs: usize },
    /// The kernel entry's frame does not start at slot 0.
    EntryFrameBase { base: u16 },
    /// A function's frame sticks out of the on-chip slot window.
    FrameOverflow { func: String, frame_base: u16, frame_size: u16, onchip_slots: u16 },
    /// A location's slot range exceeds its address space.
    SlotOutOfRange { site: MirSite, loc: MLoc, limit: u16 },
    /// A wide on-chip value is not at its hardware alignment class.
    MisalignedWide { site: MirSite, loc: MLoc },
    /// A call targets a function id outside the module.
    BadCallee { site: MirSite, callee: FuncId },
    /// A call targets a callee whose frame base is *below* the caller's.
    FrameBaseRegression { site: MirSite, callee: FuncId, caller_base: u16, callee_base: u16 },
    /// A stack move reads a word that an earlier move of the same
    /// parallel-move block already overwrote (out-of-order restore).
    ClobberedMoveSource { site: MirSite, loc: MLoc },
    /// A stack move rewrites a non-scratch word that an earlier move of
    /// the same parallel-move block already wrote.
    RewrittenMoveDest { site: MirSite, loc: MLoc },
}

impl fmt::Display for MirVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MirVerifyError::EntryOutOfRange { entry, funcs } => {
                write!(f, "entry function {} out of range ({funcs} functions)", entry.0)
            }
            MirVerifyError::EntryFrameBase { base } => {
                write!(f, "kernel entry frame must start at slot 0, found {base}")
            }
            MirVerifyError::FrameOverflow { func, frame_base, frame_size, onchip_slots } => {
                write!(
                    f,
                    "{func}: frame [{frame_base}, {}) exceeds the {onchip_slots}-slot \
                     on-chip window",
                    frame_base + frame_size
                )
            }
            MirVerifyError::SlotOutOfRange { site, loc, limit } => {
                write!(f, "{site}: location {loc} exceeds its {limit}-slot address space")
            }
            MirVerifyError::MisalignedWide { site, loc } => {
                write!(
                    f,
                    "{site}: wide value {loc} violates its {}-slot alignment class",
                    loc.width.alignment()
                )
            }
            MirVerifyError::BadCallee { site, callee } => {
                write!(f, "{site}: call targets unknown function {}", callee.0)
            }
            MirVerifyError::FrameBaseRegression { site, callee, caller_base, callee_base } => {
                write!(
                    f,
                    "{site}: callee {} frame base {callee_base} is below the caller's \
                     {caller_base} (frame bases must be monotone along call edges)",
                    callee.0
                )
            }
            MirVerifyError::ClobberedMoveSource { site, loc } => {
                write!(
                    f,
                    "{site}: stack move reads {loc} after an earlier move of the same \
                     parallel-move block overwrote it (out-of-order move)"
                )
            }
            MirVerifyError::RewrittenMoveDest { site, loc } => {
                write!(f, "{site}: stack move rewrites {loc} within one parallel-move block")
            }
        }
    }
}

impl std::error::Error for MirVerifyError {}

/// Exact parallel-move block starts recorded by the lowering stage,
/// keyed by `(function index, block index)`.
///
/// Without this table the verifier treats every maximal run of stack
/// moves as one block (see the module docs for when that
/// over-approximates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MoveRuns {
    starts: HashMap<(usize, usize), Vec<usize>>,
}

impl MoveRuns {
    /// An empty table (every maximal run is one block).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a new parallel-move block starts at instruction
    /// `idx` of `(func, block)`.
    pub fn note(&mut self, func: usize, block: usize, idx: usize) {
        self.starts.entry((func, block)).or_default().push(idx);
    }

    fn is_start(&self, func: usize, block: usize, idx: usize) -> bool {
        self.starts.get(&(func, block)).is_some_and(|v| v.contains(&idx))
    }
}

/// Verify `m` with the default configuration and maximal-run move-block
/// inference.
///
/// # Errors
/// Returns the first [`MirVerifyError`] found.
pub fn verify_mir(m: &MModule) -> Result<(), MirVerifyError> {
    verify_mir_with(m, &MirVerifyConfig::default(), None)
}

/// Verify `m` under `cfg`, using `runs` (when provided) as the exact
/// parallel-move block boundaries emitted by the lowering stage.
///
/// # Errors
/// Returns the first [`MirVerifyError`] found.
pub fn verify_mir_with(
    m: &MModule,
    cfg: &MirVerifyConfig,
    runs: Option<&MoveRuns>,
) -> Result<(), MirVerifyError> {
    if (m.entry.0 as usize) >= m.funcs.len() {
        return Err(MirVerifyError::EntryOutOfRange { entry: m.entry, funcs: m.funcs.len() });
    }
    if m.kernel().frame_base != 0 {
        return Err(MirVerifyError::EntryFrameBase { base: m.kernel().frame_base });
    }
    let onchip_slots = m.regs_per_thread + m.smem_slots_per_thread;
    for (fi, func) in m.funcs.iter().enumerate() {
        verify_function(m, fi, func, onchip_slots, cfg, runs)?;
    }
    Ok(())
}

fn verify_function(
    m: &MModule,
    fi: usize,
    func: &MFunction,
    onchip_slots: u16,
    cfg: &MirVerifyConfig,
    runs: Option<&MoveRuns>,
) -> Result<(), MirVerifyError> {
    if func.frame_base + func.frame_size > onchip_slots {
        return Err(MirVerifyError::FrameOverflow {
            func: func.name.clone(),
            frame_base: func.frame_base,
            frame_size: func.frame_size,
            onchip_slots,
        });
    }
    // Parameter/return homes are allocated web locations: range-checked
    // and, when on-chip and wide, alignment-checked.
    let sig_site = |idx| MirSite { func: func.name.clone(), block: usize::MAX, idx };
    for (i, &loc) in func.param_slots.iter().chain(&func.ret_slots).enumerate() {
        check_loc_range(m, onchip_slots, &sig_site(i), loc)?;
        check_loc_alignment(&sig_site(i), loc)?;
    }
    for (bi, block) in func.blocks.iter().enumerate() {
        // Words written by the current parallel-move block, or `None`
        // outside one. Keys are (is_local, word index).
        let mut written: Option<HashSet<(bool, u16)>> = None;
        for (ii, inst) in block.insts.iter().enumerate() {
            let site = || MirSite { func: func.name.clone(), block: bi, idx: ii };
            for loc in inst.srcs.iter().filter_map(MOperand::as_loc).chain(inst.dst) {
                check_loc_range(m, onchip_slots, &site(), loc)?;
            }
            if !inst.is_stack_move {
                // Ordinary instructions reference whole values: wide
                // operands must respect the register-pair/quad class.
                for loc in inst.srcs.iter().filter_map(MOperand::as_loc).chain(inst.dst) {
                    check_loc_alignment(&site(), loc)?;
                }
            }
            if let Opcode::Call(callee) = inst.op {
                let Some(target) = m.funcs.get(callee.0 as usize) else {
                    return Err(MirVerifyError::BadCallee { site: site(), callee });
                };
                if target.frame_base < func.frame_base {
                    return Err(MirVerifyError::FrameBaseRegression {
                        site: site(),
                        callee,
                        caller_base: func.frame_base,
                        callee_base: target.frame_base,
                    });
                }
            }
            if inst.is_stack_move && inst.op == Opcode::Mov {
                let reset = written.is_none() || runs.is_some_and(|r| r.is_start(fi, bi, ii));
                if reset {
                    written = Some(HashSet::new());
                }
                let set = written.as_mut().expect("just initialized");
                check_move_ordering(set, cfg, &site(), inst)?;
            } else {
                written = None;
            }
        }
    }
    Ok(())
}

fn words(loc: MLoc) -> impl Iterator<Item = (bool, u16)> {
    let local = loc.place == Place::Local;
    (loc.slot..loc.slot + loc.width.words()).map(move |w| (local, w))
}

fn in_scratch(loc: MLoc, cfg: &MirVerifyConfig) -> bool {
    loc.place == Place::Local && loc.slot + loc.width.words() <= cfg.scratch_slots
}

fn check_move_ordering(
    written: &mut HashSet<(bool, u16)>,
    cfg: &MirVerifyConfig,
    site: &MirSite,
    inst: &MInst,
) -> Result<(), MirVerifyError> {
    // Read before write: the source must still hold its pre-block value
    // unless it is the scratch bounce.
    if let Some(src) = inst.srcs.first().and_then(MOperand::as_loc) {
        if !in_scratch(src, cfg) && words(src).any(|w| written.contains(&w)) {
            return Err(MirVerifyError::ClobberedMoveSource { site: site.clone(), loc: src });
        }
    }
    if let Some(dst) = inst.dst {
        if !in_scratch(dst, cfg) && words(dst).any(|w| written.contains(&w)) {
            return Err(MirVerifyError::RewrittenMoveDest { site: site.clone(), loc: dst });
        }
        written.extend(words(dst));
    }
    Ok(())
}

fn check_loc_range(
    m: &MModule,
    onchip_slots: u16,
    site: &MirSite,
    loc: MLoc,
) -> Result<(), MirVerifyError> {
    let limit = match loc.place {
        Place::Onchip => onchip_slots,
        Place::Local => m.local_slots_per_thread,
    };
    if loc.slot + loc.width.words() > limit {
        return Err(MirVerifyError::SlotOutOfRange { site: site.clone(), loc, limit });
    }
    Ok(())
}

fn check_loc_alignment(site: &MirSite, loc: MLoc) -> Result<(), MirVerifyError> {
    if loc.place == Place::Onchip && !loc.slot.is_multiple_of(loc.width.alignment()) {
        return Err(MirVerifyError::MisalignedWide { site: site.clone(), loc });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Terminator;
    use crate::mir::MBlock;
    use crate::types::Width;

    fn module_with(insts: Vec<MInst>) -> MModule {
        MModule {
            funcs: vec![MFunction {
                name: "k".to_string(),
                frame_base: 0,
                frame_size: 8,
                param_slots: vec![],
                ret_slots: vec![],
                blocks: vec![MBlock { insts, term: Terminator::Exit }],
            }],
            entry: FuncId(0),
            regs_per_thread: 8,
            smem_slots_per_thread: 0,
            local_slots_per_thread: 8,
            user_smem_bytes: 0,
            static_stack_moves: 0,
        }
    }

    #[test]
    fn accepts_well_formed_moves() {
        // A chain in the correct (sequentialized) order, then a swap
        // broken through scratch.
        let m = module_with(vec![
            MInst::mov(MLoc::onchip(2, Width::W32), MLoc::onchip(1, Width::W32)),
            MInst::mov(MLoc::onchip(1, Width::W32), MLoc::onchip(0, Width::W32)),
            MInst::mov(MLoc::local(0, Width::W32), MLoc::onchip(4, Width::W32)),
            MInst::mov(MLoc::onchip(4, Width::W32), MLoc::onchip(5, Width::W32)),
            MInst::mov(MLoc::onchip(5, Width::W32), MLoc::local(0, Width::W32)),
        ]);
        verify_mir(&m).unwrap();
    }

    #[test]
    fn rejects_out_of_order_move() {
        // r1 <- r0 then r2 <- r1 reads r1 after it was clobbered.
        let m = module_with(vec![
            MInst::mov(MLoc::onchip(1, Width::W32), MLoc::onchip(0, Width::W32)),
            MInst::mov(MLoc::onchip(2, Width::W32), MLoc::onchip(1, Width::W32)),
        ]);
        let err = verify_mir(&m).unwrap_err();
        assert!(matches!(err, MirVerifyError::ClobberedMoveSource { .. }), "{err}");
        assert!(err.to_string().contains("out-of-order"), "{err}");
    }

    #[test]
    fn rejects_double_write() {
        let m = module_with(vec![
            MInst::mov(MLoc::onchip(1, Width::W32), MLoc::onchip(0, Width::W32)),
            MInst::mov(MLoc::onchip(1, Width::W32), MLoc::onchip(2, Width::W32)),
        ]);
        let err = verify_mir(&m).unwrap_err();
        assert!(matches!(err, MirVerifyError::RewrittenMoveDest { .. }), "{err}");
    }

    #[test]
    fn move_runs_split_merged_blocks() {
        // Restore r0 <- r3, then (a new parallel-move block for the next
        // call) compress r3 <- r0. Fused, this looks like a clobbered
        // read; the recorded run boundary makes it legal.
        let insts = vec![
            MInst::mov(MLoc::onchip(0, Width::W32), MLoc::onchip(3, Width::W32)),
            MInst::mov(MLoc::onchip(3, Width::W32), MLoc::onchip(0, Width::W32)),
        ];
        let m = module_with(insts);
        assert!(verify_mir(&m).is_err(), "fused run must look clobbered");
        let mut runs = MoveRuns::new();
        runs.note(0, 0, 0);
        runs.note(0, 0, 1);
        verify_mir_with(&m, &MirVerifyConfig::default(), Some(&runs)).unwrap();
    }

    #[test]
    fn rejects_bad_slot_range() {
        let m = module_with(vec![MInst::new(
            Opcode::IAdd,
            Some(MLoc::onchip(7, Width::W64)), // slots 7..9, limit 8
            vec![MOperand::Imm(1), MOperand::Imm(2)],
        )]);
        let err = verify_mir(&m).unwrap_err();
        assert!(matches!(err, MirVerifyError::SlotOutOfRange { .. }), "{err}");
        assert!(err.to_string().contains("address space"), "{err}");
    }

    #[test]
    fn rejects_local_overflow() {
        let m = module_with(vec![MInst::new(
            Opcode::Mov,
            Some(MLoc::onchip(0, Width::W32)),
            vec![MOperand::Loc(MLoc::local(8, Width::W32))],
        )]);
        assert!(matches!(verify_mir(&m).unwrap_err(), MirVerifyError::SlotOutOfRange { .. }));
    }

    #[test]
    fn rejects_misaligned_wide() {
        let m = module_with(vec![MInst::new(
            Opcode::DAdd,
            Some(MLoc::onchip(1, Width::W64)), // odd start for a pair
            vec![
                MOperand::Loc(MLoc::onchip(2, Width::W64)),
                MOperand::Loc(MLoc::onchip(4, Width::W64)),
            ],
        )]);
        let err = verify_mir(&m).unwrap_err();
        assert!(matches!(err, MirVerifyError::MisalignedWide { .. }), "{err}");
        assert!(err.to_string().contains("alignment class"), "{err}");
    }

    #[test]
    fn stack_move_chunks_exempt_from_alignment() {
        // A W64 compression chunk at an odd slot is legal.
        let m =
            module_with(vec![MInst::mov(MLoc::onchip(1, Width::W64), MLoc::onchip(5, Width::W64))]);
        verify_mir(&m).unwrap();
    }

    #[test]
    fn rejects_frame_base_regression() {
        // Entry kernel at base 0 calls f1 (base 4), which calls f2.
        let mut m = module_with(vec![MInst::new(Opcode::Call(FuncId(1)), None, vec![])]);
        let dev = |name: &str, frame_base, callee: Option<FuncId>| MFunction {
            name: name.to_string(),
            frame_base,
            frame_size: 2,
            param_slots: vec![],
            ret_slots: vec![],
            blocks: vec![MBlock {
                insts: callee
                    .map(|c| MInst::new(Opcode::Call(c), None, vec![]))
                    .into_iter()
                    .collect(),
                term: Terminator::Ret,
            }],
        };
        m.funcs.push(dev("f1", 4, Some(FuncId(2))));
        m.funcs.push(dev("f2", 6, None));
        verify_mir(&m).unwrap();
        // Now regress: f1's callee frame starts *below* f1's own frame.
        m.funcs[2].frame_base = 3;
        let err = verify_mir(&m).unwrap_err();
        assert!(matches!(err, MirVerifyError::FrameBaseRegression { .. }), "{err}");
        assert!(err.to_string().contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_bad_entry_and_frame_overflow() {
        let mut m = module_with(vec![]);
        m.entry = FuncId(3);
        assert!(matches!(verify_mir(&m).unwrap_err(), MirVerifyError::EntryOutOfRange { .. }));
        let mut m = module_with(vec![]);
        m.funcs[0].frame_size = 9; // window is 8
        assert!(matches!(verify_mir(&m).unwrap_err(), MirVerifyError::FrameOverflow { .. }));
    }
}
