//! Functions, basic blocks, and modules.

use crate::inst::Inst;
use crate::types::{BlockId, FuncId, PredReg, VReg, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a predicate register; lanes where the
    /// predicate (negated if `neg`) holds go to `then_bb`, others to
    /// `else_bb`. May diverge within a warp.
    Branch { pred: PredReg, neg: bool, then_bb: BlockId, else_bb: BlockId },
    /// Return from a device function.
    Ret,
    /// Terminate the thread (kernels only).
    Exit,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(*t), None),
            Terminator::Branch { then_bb, else_bb, .. } => (Some(*then_bb), Some(*else_bb)),
            Terminator::Ret | Terminator::Exit => (None, None),
        };
        a.into_iter().chain(b)
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    pub insts: Vec<Inst>,
    pub term: Terminator,
}

impl BasicBlock {
    /// An empty block falling through to `target`.
    pub fn jump_to(target: BlockId) -> Self {
        BasicBlock { insts: Vec::new(), term: Terminator::Jump(target) }
    }
}

/// Whether a function is a kernel entry or a callable device function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FuncKind {
    /// Grid entry point; terminates with `Exit`.
    Kernel,
    /// Device function; terminates with `Ret`, takes `params`, returns
    /// `ret_width` values.
    Device,
}

/// A function: blocks, virtual-register table, parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub kind: FuncKind,
    /// Width of each virtual register, indexed by `VReg.0`.
    pub vreg_widths: Vec<Width>,
    /// Device-function value parameters (bound on entry from the caller's
    /// `CallInfo::args`, in order). Empty for kernels — kernels read
    /// launch parameters through `Operand::Param`.
    pub params: Vec<VReg>,
    /// Device-function return registers (read by the caller into
    /// `CallInfo::rets`). Empty for kernels.
    pub rets: Vec<VReg>,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// Create an empty function with a single `Exit`/`Ret` block.
    pub fn new(name: impl Into<String>, kind: FuncKind) -> Self {
        let term = match kind {
            FuncKind::Kernel => Terminator::Exit,
            FuncKind::Device => Terminator::Ret,
        };
        Function {
            name: name.into(),
            kind,
            vreg_widths: Vec::new(),
            params: Vec::new(),
            rets: Vec::new(),
            blocks: vec![BasicBlock { insts: Vec::new(), term }],
        }
    }

    /// Allocate a fresh virtual register of the given width.
    pub fn new_vreg(&mut self, width: Width) -> VReg {
        let r = VReg(self.vreg_widths.len() as u32);
        self.vreg_widths.push(width);
        r
    }

    /// Width of a virtual register.
    ///
    /// # Panics
    /// Panics if the register was not created by [`Function::new_vreg`].
    #[inline]
    pub fn width(&self, r: VReg) -> Width {
        self.vreg_widths[r.0 as usize]
    }

    /// Number of virtual registers.
    #[inline]
    pub fn num_vregs(&self) -> usize {
        self.vreg_widths.len()
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Append a new empty block (terminated by `Jump` to itself as a
    /// placeholder — callers must set the real terminator).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::jump_to(id));
        id
    }

    /// Shared access to a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0 as usize]
    }

    /// Iterate over `(BlockId, &BasicBlock)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total static instruction count (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Static `Call` sites, in block order.
    pub fn call_sites(&self) -> Vec<(BlockId, usize, FuncId)> {
        let mut out = Vec::new();
        for (bid, b) in self.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if let crate::inst::Opcode::Call(f) = inst.op {
                    out.push((bid, i, f));
                }
            }
        }
        out
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {}({:?}) -> {:?} {{",
            match self.kind {
                FuncKind::Kernel => "kernel",
                FuncKind::Device => "device",
            },
            self.name,
            self.params,
            self.rets
        )?;
        for (bid, b) in self.iter_blocks() {
            writeln!(f, "{bid}:")?;
            for i in &b.insts {
                writeln!(f, "    {i}")?;
            }
            writeln!(f, "    {:?}", b.term)?;
        }
        writeln!(f, "}}")
    }
}

/// A module: a kernel plus the device functions it (transitively) calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub funcs: Vec<Function>,
    /// The kernel entry function.
    pub entry: FuncId,
    /// Bytes of user-declared shared memory per thread block (the
    /// `__shared__` arrays of the original program). The allocator may
    /// place additional per-thread slots above this region.
    pub user_smem_bytes: u32,
}

impl Module {
    /// A module containing a single kernel.
    pub fn new(kernel: Function) -> Self {
        assert_eq!(kernel.kind, FuncKind::Kernel, "module entry must be a kernel");
        Module { funcs: vec![kernel], entry: FuncId(0), user_smem_bytes: 0 }
    }

    /// Add a device function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Shared access to a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to a function.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// The kernel entry function.
    #[inline]
    pub fn kernel(&self) -> &Function {
        self.func(self.entry)
    }

    /// Iterate `(FuncId, &Function)`.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId(i as u32), f))
    }

    /// A stable structural fingerprint of the module, for content-keyed
    /// caches (workload builders construct a fresh `Module` per call, so
    /// pointer identity is useless as a cache key). Hashes the complete
    /// `Debug` rendering — which covers every instruction, operand, and
    /// module attribute — through a streaming writer, so equal modules
    /// always agree and distinct ones collide only with ~2^-64
    /// probability.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        struct HashWriter(std::collections::hash_map::DefaultHasher);
        impl std::fmt::Write for HashWriter {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }
        let mut w = HashWriter(std::collections::hash_map::DefaultHasher::new());
        let _ = std::fmt::write(&mut w, format_args!("{self:?}"));
        w.0.finish()
    }

    /// Total static `Call` instructions across all functions — the
    /// "Func" column of the paper's Table 2.
    pub fn static_call_count(&self) -> usize {
        self.funcs.iter().map(|f| f.call_sites().len()).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, func) in self.iter_funcs() {
            writeln!(f, "; {id}")?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Opcode, Operand};

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new("k", FuncKind::Kernel);
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block(BlockId(0)).term, Terminator::Exit);
    }

    #[test]
    fn vreg_widths_tracked() {
        let mut f = Function::new("k", FuncKind::Kernel);
        let a = f.new_vreg(Width::W32);
        let b = f.new_vreg(Width::W64);
        assert_eq!(f.width(a), Width::W32);
        assert_eq!(f.width(b), Width::W64);
        assert_eq!(f.num_vregs(), 2);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            pred: PredReg(0),
            neg: false,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors().collect::<Vec<_>>(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret.successors().count(), 0);
    }

    #[test]
    fn module_call_count() {
        let mut k = Function::new("k", FuncKind::Kernel);
        let mut m = {
            let _ = k.new_vreg(Width::W32);
            Module::new(k)
        };
        let dev = m.add_func(Function::new("d", FuncKind::Device));
        let mut call = Inst::new(Opcode::Call(dev), None, vec![]);
        call.call = Some(crate::inst::CallInfo { args: vec![Operand::Imm(0)], rets: vec![] });
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts.push(call);
        assert_eq!(m.static_call_count(), 1);
    }
}
