//! Live-variable analysis over virtual registers, plus the paper's
//! *max-live* metric (§3.3): the number of 32-bit register slots needed
//! to hold all simultaneously live variables.

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::function::Function;
use crate::types::{BlockId, VReg};

/// Result of live-variable analysis for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Run the backward dataflow analysis.
    ///
    /// Device-function return registers are treated as live at `Ret`
    /// terminators (the caller reads them), and parameters as defined on
    /// entry.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.num_blocks();
        let nv = f.num_vregs();
        let mut use_: Vec<BitSet> = Vec::with_capacity(n);
        let mut def: Vec<BitSet> = Vec::with_capacity(n);
        for (_, b) in f.iter_blocks() {
            let mut u = BitSet::new(nv);
            let mut d = BitSet::new(nv);
            for inst in &b.insts {
                for s in inst.uses() {
                    if !d.contains(s.0 as usize) {
                        u.insert(s.0 as usize);
                    }
                }
                for t in inst.defs() {
                    d.insert(t.0 as usize);
                }
            }
            // Ret implicitly uses the function's return registers.
            if matches!(b.term, crate::function::Terminator::Ret) {
                for &r in &f.rets {
                    if !d.contains(r.0 as usize) {
                        u.insert(r.0 as usize);
                    }
                }
            }
            use_.push(u);
            def.push(d);
        }
        let mut live_in = vec![BitSet::new(nv); n];
        let mut live_out = vec![BitSet::new(nv); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse RPO for fast convergence.
            for &b in cfg.rpo.iter().rev() {
                let bi = b.0 as usize;
                let mut out = BitSet::new(nv);
                for s in &cfg.succs[bi] {
                    out.union_with(&live_in[s.0 as usize]);
                }
                let mut inn = out.clone();
                inn.subtract(&def[bi]);
                inn.union_with(&use_[bi]);
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Live sets *before* each instruction of block `b`, computed by a
    /// backward walk from `live_out[b]`. `result[i]` is live before
    /// instruction `i`; `result[len]` is live at the terminator.
    pub fn per_inst(&self, f: &Function, b: BlockId) -> Vec<BitSet> {
        let blk = f.block(b);
        let n = blk.insts.len();
        let mut out = vec![BitSet::new(f.num_vregs()); n + 1];
        let mut live = self.live_out[b.0 as usize].clone();
        out[n] = live.clone();
        for i in (0..n).rev() {
            let inst = &blk.insts[i];
            for d in inst.defs() {
                live.remove(d.0 as usize);
            }
            for u in inst.uses() {
                live.insert(u.0 as usize);
            }
            out[i] = live.clone();
        }
        out
    }

    /// Registers live *across* the instruction at `(b, idx)` — live after
    /// it and not defined by it. For a call, these are the caller values
    /// the compressible stack must preserve.
    pub fn live_across(&self, f: &Function, b: BlockId, idx: usize) -> Vec<VReg> {
        let sets = self.per_inst(f, b);
        let inst = &f.block(b).insts[idx];
        let mut after = sets[idx + 1].clone();
        for d in inst.defs() {
            after.remove(d.0 as usize);
        }
        after.iter().map(|i| VReg(i as u32)).collect()
    }
}

/// Width-weighted *max-live*: the maximum, over all program points, of
/// the total number of 32-bit words occupied by simultaneously live
/// variables. This is the paper's direction-selection metric (threshold
/// 32, §3.3) and also the number of registers needed to avoid spilling.
pub fn max_live(f: &Function, cfg: &Cfg, live: &Liveness) -> u32 {
    let mut max = 0u32;
    for (bid, blk) in f.iter_blocks() {
        if !cfg.reachable(bid) {
            continue;
        }
        let sets = live.per_inst(f, bid);
        for set in &sets {
            let w: u32 = set.iter().map(|i| u32::from(f.vreg_widths[i].words())).sum();
            max = max.max(w);
        }
        // Also account for the point right after each def (def + still-live).
        for (i, inst) in blk.insts.iter().enumerate() {
            let mut after = sets[i + 1].clone();
            for d in inst.defs() {
                after.insert(d.0 as usize);
            }
            let w: u32 = after.iter().map(|j| u32::from(f.vreg_widths[j].words())).sum();
            max = max.max(w);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FuncKind, Function, Terminator};
    use crate::inst::{Inst, Opcode, Operand};
    use crate::types::Width;

    /// v0 = mov 1; v1 = mov 2; v2 = add v0 v1; st v2
    fn straight_line() -> Function {
        let mut f = Function::new("k", FuncKind::Kernel);
        let v0 = f.new_vreg(Width::W32);
        let v1 = f.new_vreg(Width::W32);
        let v2 = f.new_vreg(Width::W32);
        let b = BlockId(0);
        f.block_mut(b).insts = vec![
            Inst::new(Opcode::Mov, Some(v0), vec![Operand::Imm(1)]),
            Inst::new(Opcode::Mov, Some(v1), vec![Operand::Imm(2)]),
            Inst::new(Opcode::IAdd, Some(v2), vec![v0.into(), v1.into()]),
            Inst::new(
                Opcode::St { space: crate::types::MemSpace::Global, width: Width::W32, offset: 0 },
                None,
                vec![Operand::Imm(0), v2.into()],
            ),
        ];
        f
    }

    #[test]
    fn straight_line_liveness() {
        let f = straight_line();
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        assert!(live.live_in[0].is_empty());
        assert!(live.live_out[0].is_empty());
        let per = live.per_inst(&f, BlockId(0));
        // Before the add, v0 and v1 are live.
        assert_eq!(per[2].iter().collect::<Vec<_>>(), vec![0, 1]);
        // Before the store, only v2.
        assert_eq!(per[3].iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn straight_line_max_live() {
        let f = straight_line();
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        // v0,v1 live together; after add only v2: max-live = 2.
        assert_eq!(max_live(&f, &cfg, &live), 2);
    }

    #[test]
    fn wide_values_count_words() {
        let mut f = Function::new("k", FuncKind::Kernel);
        let a = f.new_vreg(Width::W128);
        let b = f.new_vreg(Width::W32);
        f.block_mut(BlockId(0)).insts = vec![
            Inst::new(Opcode::Mov, Some(a), vec![Operand::Imm(0)]),
            Inst::new(Opcode::Unpack { lane: 0 }, Some(b), vec![a.into()]),
            Inst::new(
                Opcode::St { space: crate::types::MemSpace::Global, width: Width::W32, offset: 0 },
                None,
                vec![Operand::Imm(0), b.into()],
            ),
        ];
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        // The W128 is live alone (it dies at the unpack, whose W32 def
        // does not overlap it): max-live = 4 words.
        assert_eq!(max_live(&f, &cfg, &live), 4);
    }

    #[test]
    fn loop_carried_liveness() {
        // v0 = 0; loop: v0 = v0 + 1; branch loop/exit
        let mut f = Function::new("k", FuncKind::Kernel);
        let v0 = f.new_vreg(Width::W32);
        let header = f.new_block();
        let exit = f.new_block();
        f.block_mut(BlockId(0)).insts =
            vec![Inst::new(Opcode::Mov, Some(v0), vec![Operand::Imm(0)])];
        f.block_mut(BlockId(0)).term = Terminator::Jump(header);
        f.block_mut(header).insts =
            vec![Inst::new(Opcode::IAdd, Some(v0), vec![v0.into(), Operand::Imm(1)])];
        f.block_mut(header).term = Terminator::Branch {
            pred: crate::types::PredReg(0),
            neg: false,
            then_bb: header,
            else_bb: exit,
        };
        f.block_mut(exit).term = Terminator::Exit;
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        // v0 live around the back edge.
        assert!(live.live_in[header.0 as usize].contains(0));
        assert!(live.live_out[header.0 as usize].contains(0));
    }

    #[test]
    fn live_across_call() {
        use crate::inst::CallInfo;
        let mut f = Function::new("k", FuncKind::Kernel);
        let keep = f.new_vreg(Width::W32);
        let dies = f.new_vreg(Width::W32);
        let ret = f.new_vreg(Width::W32);
        let sum = f.new_vreg(Width::W32);
        let mut call = Inst::new(Opcode::Call(crate::types::FuncId(1)), None, vec![]);
        call.call = Some(CallInfo { args: vec![dies.into()], rets: vec![ret] });
        f.block_mut(BlockId(0)).insts = vec![
            Inst::new(Opcode::Mov, Some(keep), vec![Operand::Imm(1)]),
            Inst::new(Opcode::Mov, Some(dies), vec![Operand::Imm(2)]),
            call,
            Inst::new(Opcode::IAdd, Some(sum), vec![keep.into(), ret.into()]),
            Inst::new(
                Opcode::St { space: crate::types::MemSpace::Global, width: Width::W32, offset: 0 },
                None,
                vec![Operand::Imm(0), sum.into()],
            ),
        ];
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let across = live.live_across(&f, BlockId(0), 2);
        // Only `keep` survives the call: `dies` dies at it, `ret` is its def.
        assert_eq!(across, vec![keep]);
    }
}
