//! A small fixed-capacity bit set used by the dataflow analyses.

use std::fmt;

/// Fixed-capacity bit set over `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity (number of addressable elements).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        let newly = *w & m == 0;
        *w |= m;
        newly
    }

    /// Remove `i`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        let had = *w & m != 0;
        *w &= !m;
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_and_subtract() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(65);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 65]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_order() {
        let s: BitSet = [5usize, 3, 64, 127].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 5, 64, 127]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }
}
