//! Shared functional semantics of ALU opcodes.
//!
//! Both the untimed reference interpreter ([`crate::interp`]) and the
//! timed GPU simulator evaluate instructions through [`eval_alu`], so a
//! value computed under either engine is bit-identical — the property the
//! semantic-preservation tests rely on.

use crate::inst::{Cmp, Opcode};

/// A register value: up to four 32-bit words (wide values use 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Val {
    pub w: [u32; 4],
}

impl Val {
    /// A 32-bit scalar.
    #[inline]
    pub fn scalar(x: u32) -> Val {
        Val { w: [x, 0, 0, 0] }
    }

    /// From an f32 (bit pattern).
    #[inline]
    pub fn from_f32(x: f32) -> Val {
        Val::scalar(x.to_bits())
    }

    /// From an i32.
    #[inline]
    pub fn from_i32(x: i32) -> Val {
        Val::scalar(x as u32)
    }

    /// From an f64 (two words, little-endian).
    #[inline]
    pub fn from_f64(x: f64) -> Val {
        let b = x.to_bits();
        Val { w: [b as u32, (b >> 32) as u32, 0, 0] }
    }

    /// Word 0 as u32.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.w[0]
    }

    /// Word 0 as i32.
    #[inline]
    pub fn as_i32(self) -> i32 {
        self.w[0] as i32
    }

    /// Word 0 as f32.
    #[inline]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.w[0])
    }

    /// Words 0..2 as f64.
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(u64::from(self.w[0]) | (u64::from(self.w[1]) << 32))
    }
}

/// Evaluate a pure ALU/conversion/data-movement opcode.
///
/// `Sel` is evaluated by the caller (it needs the selector predicate);
/// memory, call, and control opcodes are not ALU ops.
///
/// # Panics
/// Panics if called with a non-ALU opcode or wrong source count —
/// verified IR never does.
pub fn eval_alu(op: &Opcode, s: &[Val]) -> Val {
    use Opcode::*;
    let i = |k: usize| s[k].as_i32();
    let u = |k: usize| s[k].as_u32();
    let f = |k: usize| s[k].as_f32();
    let d = |k: usize| s[k].as_f64();
    match op {
        IAdd => Val::from_i32(i(0).wrapping_add(i(1))),
        ISub => Val::from_i32(i(0).wrapping_sub(i(1))),
        IMul => Val::from_i32(i(0).wrapping_mul(i(1))),
        IMad => Val::from_i32(i(0).wrapping_mul(i(1)).wrapping_add(i(2))),
        IMin => Val::from_i32(i(0).min(i(1))),
        IMax => Val::from_i32(i(0).max(i(1))),
        Shl => Val::scalar(u(0) << (u(1) & 31)),
        Shr => Val::scalar(u(0) >> (u(1) & 31)),
        And => Val::scalar(u(0) & u(1)),
        Or => Val::scalar(u(0) | u(1)),
        Xor => Val::scalar(u(0) ^ u(1)),
        Not => Val::scalar(!u(0)),
        FAdd => Val::from_f32(f(0) + f(1)),
        FSub => Val::from_f32(f(0) - f(1)),
        FMul => Val::from_f32(f(0) * f(1)),
        FFma => Val::from_f32(f(0).mul_add(f(1), f(2))),
        FMin => Val::from_f32(f(0).min(f(1))),
        FMax => Val::from_f32(f(0).max(f(1))),
        FNeg => Val::from_f32(-f(0)),
        FAbs => Val::from_f32(f(0).abs()),
        FRcp => Val::from_f32(1.0 / f(0)),
        FSqrt => Val::from_f32(f(0).sqrt()),
        DAdd => Val::from_f64(d(0) + d(1)),
        DMul => Val::from_f64(d(0) * d(1)),
        DFma => Val::from_f64(d(0).mul_add(d(1), d(2))),
        I2F => Val::from_f32(i(0) as f32),
        F2I => Val::from_i32(f(0) as i32),
        Mov => s[0],
        Unpack { lane } => Val::scalar(s[0].w[*lane as usize]),
        Pack { lane } => {
            let mut v = s[0];
            v.w[*lane as usize] = s[1].as_u32();
            v
        }
        other => panic!("eval_alu on non-ALU opcode {other:?}"),
    }
}

/// Evaluate a compare opcode to a predicate value.
///
/// # Panics
/// Panics when `op` is not `ISetp`/`FSetp`.
pub fn eval_setp(op: &Opcode, s: &[Val]) -> bool {
    match op {
        Opcode::ISetp(c) => c.eval_i32(s[0].as_i32(), s[1].as_i32()),
        Opcode::FSetp(c) => c.eval_f32(s[0].as_f32(), s[1].as_f32()),
        other => panic!("eval_setp on {other:?}"),
    }
}

/// Evaluate `Cmp` directly (re-exported convenience).
pub fn eval_cmp_i32(c: Cmp, a: i32, b: i32) -> bool {
    c.eval_i32(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops_wrap() {
        assert_eq!(
            eval_alu(&Opcode::IAdd, &[Val::from_i32(i32::MAX), Val::from_i32(1)]).as_i32(),
            i32::MIN
        );
        assert_eq!(
            eval_alu(&Opcode::IMad, &[Val::from_i32(3), Val::from_i32(4), Val::from_i32(5)])
                .as_i32(),
            17
        );
    }

    #[test]
    fn float_ops() {
        let v =
            eval_alu(&Opcode::FFma, &[Val::from_f32(2.0), Val::from_f32(3.0), Val::from_f32(1.0)]);
        assert_eq!(v.as_f32(), 7.0);
        assert_eq!(eval_alu(&Opcode::FRcp, &[Val::from_f32(4.0)]).as_f32(), 0.25);
    }

    #[test]
    fn double_roundtrip() {
        let v = eval_alu(&Opcode::DMul, &[Val::from_f64(1.5), Val::from_f64(2.0)]);
        assert_eq!(v.as_f64(), 3.0);
    }

    #[test]
    fn pack_unpack() {
        let wide = Val { w: [1, 2, 3, 4] };
        assert_eq!(eval_alu(&Opcode::Unpack { lane: 2 }, &[wide]).as_u32(), 3);
        let packed = eval_alu(&Opcode::Pack { lane: 1 }, &[wide, Val::scalar(9)]);
        assert_eq!(packed.w, [1, 9, 3, 4]);
    }

    #[test]
    fn setp() {
        assert!(eval_setp(&Opcode::ISetp(Cmp::Lt), &[Val::from_i32(1), Val::from_i32(2)]));
        assert!(!eval_setp(&Opcode::FSetp(Cmp::Gt), &[Val::from_f32(1.0), Val::from_f32(2.0)]));
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(eval_alu(&Opcode::Shl, &[Val::scalar(1), Val::scalar(33)]).as_u32(), 2);
    }
}
