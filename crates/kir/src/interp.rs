//! Untimed reference interpreter for IR modules.
//!
//! Executes a kernel launch thread-by-thread (scalar semantics) with
//! block-phase barrier handling. It is the semantic oracle: the timed GPU
//! simulator must produce bit-identical global memory for the *machine*
//! code the allocator generates from the same module.

use crate::function::{FuncKind, Module, Terminator};
use crate::inst::{Opcode, Operand};
use crate::sem::{eval_alu, eval_setp, Val};
use crate::types::{BlockId, FuncId, MemSpace, SpecialReg, Width, NUM_PRED_REGS};

/// Kernel launch shape (1-D, as in all modeled benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid: u32,
    /// Threads per block (multiple of 32 in practice).
    pub block: u32,
}

impl LaunchConfig {
    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid) * u64::from(self.block)
    }
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Memory access outside the provided buffer.
    OutOfBounds { space: MemSpace, addr: u64, len: u32 },
    /// Execution exceeded the step limit (runaway loop).
    StepLimit,
    /// Threads of a block reached different barrier states.
    BarrierDivergence,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfBounds { space, addr, len } => {
                write!(f, "{space} access of {len} bytes at {addr:#x} out of bounds")
            }
            InterpError::StepLimit => write!(f, "dynamic step limit exceeded"),
            InterpError::BarrierDivergence => write!(f, "threads diverged at a barrier"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Execution statistics of a launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Dynamic instructions executed (including predicated-off).
    pub dyn_insts: u64,
    /// Dynamic global memory operations.
    pub global_ops: u64,
    /// Dynamic shared memory operations.
    pub shared_ops: u64,
    /// Dynamic local memory operations.
    pub local_ops: u64,
    /// Dynamic call instructions.
    pub calls: u64,
}

const DEFAULT_STEP_LIMIT: u64 = 200_000_000;

struct Frame<'m> {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<Val>,
    ret_into: Vec<crate::types::VReg>, // caller registers to receive rets
    _ph: std::marker::PhantomData<&'m ()>,
}

enum ThreadStatus {
    Running,
    AtBarrier,
    Done,
}

struct Thread<'m> {
    frames: Vec<Frame<'m>>,
    preds: [bool; NUM_PRED_REGS as usize],
    status: ThreadStatus,
    tid: u32,
    local: Vec<u8>,
}

/// Memory accessor helpers shared with tests.
fn read_mem(buf: &[u8], addr: u64, width: Width) -> Result<Val, ()> {
    let n = width.bytes() as usize;
    let a = addr as usize;
    if a + n > buf.len() {
        return Err(());
    }
    let mut v = Val::default();
    for (i, chunk) in buf[a..a + n].chunks(4).enumerate() {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        v.w[i] = u32::from_le_bytes(w);
    }
    Ok(v)
}

fn write_mem(buf: &mut [u8], addr: u64, width: Width, v: Val) -> Result<(), ()> {
    let n = width.bytes() as usize;
    let a = addr as usize;
    if a + n > buf.len() {
        return Err(());
    }
    for i in 0..width.words() as usize {
        let bytes = v.w[i].to_le_bytes();
        let take = (n - i * 4).min(4);
        buf[a + i * 4..a + i * 4 + take].copy_from_slice(&bytes[..take]);
    }
    Ok(())
}

/// Interpreter for one kernel launch over a module in virtual-register
/// form. `params` are the kernel launch parameters read by
/// [`Operand::Param`]; `global` is the device global memory.
pub struct Interpreter<'m> {
    module: &'m Module,
    params: Vec<u32>,
    /// Per-thread local memory bytes to provision (spill space); the
    /// reference interpreter only needs it when interpreting machine-
    /// lowered modules, but providing it keeps launches uniform.
    pub local_bytes_per_thread: u32,
    /// Dynamic step limit guard.
    pub step_limit: u64,
}

impl<'m> Interpreter<'m> {
    /// Create an interpreter for `module` with launch parameters.
    pub fn new(module: &'m Module, params: &[u32]) -> Self {
        Interpreter {
            module,
            params: params.to_vec(),
            local_bytes_per_thread: 4096,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Run the launch to completion.
    ///
    /// # Errors
    /// Returns [`InterpError`] on out-of-bounds accesses, runaway loops,
    /// or barrier divergence.
    pub fn run(&self, cfg: LaunchConfig, global: &mut [u8]) -> Result<InterpStats, InterpError> {
        let mut stats = InterpStats::default();
        let mut budget = self.step_limit;
        for cta in 0..cfg.grid {
            self.run_block(cta, cfg, global, &mut stats, &mut budget)?;
        }
        Ok(stats)
    }

    fn new_thread(&self, tid: u32) -> Thread<'m> {
        let entry = self.module.entry;
        let kf = self.module.func(entry);
        debug_assert_eq!(kf.kind, FuncKind::Kernel);
        Thread {
            frames: vec![Frame {
                func: entry,
                block: BlockId(0),
                idx: 0,
                regs: vec![Val::default(); kf.num_vregs()],
                ret_into: Vec::new(),
                _ph: std::marker::PhantomData,
            }],
            preds: [false; NUM_PRED_REGS as usize],
            status: ThreadStatus::Running,
            tid,
            local: vec![0u8; self.local_bytes_per_thread as usize],
        }
    }

    fn run_block(
        &self,
        cta: u32,
        cfg: LaunchConfig,
        global: &mut [u8],
        stats: &mut InterpStats,
        budget: &mut u64,
    ) -> Result<(), InterpError> {
        let mut shared = vec![0u8; self.module.user_smem_bytes as usize];
        let mut threads: Vec<Thread> = (0..cfg.block).map(|t| self.new_thread(t)).collect();
        loop {
            let mut any_running = false;
            for th in &mut threads {
                if matches!(th.status, ThreadStatus::Running) {
                    self.step_thread(th, cta, cfg, global, &mut shared, stats, budget)?;
                }
            }
            let mut at_bar = 0usize;
            let mut done = 0usize;
            for th in &threads {
                match th.status {
                    ThreadStatus::Running => any_running = true,
                    ThreadStatus::AtBarrier => at_bar += 1,
                    ThreadStatus::Done => done += 1,
                }
            }
            debug_assert!(!any_running, "step_thread runs to barrier or exit");
            let _ = any_running;
            if done == threads.len() {
                return Ok(());
            }
            // All non-done threads must be at the barrier together.
            if at_bar + done != threads.len() || at_bar == 0 {
                return Err(InterpError::BarrierDivergence);
            }
            for th in &mut threads {
                if matches!(th.status, ThreadStatus::AtBarrier) {
                    th.status = ThreadStatus::Running;
                }
            }
        }
    }

    fn operand(&self, th: &Thread, fr: &Frame, op: &Operand, cta: u32, cfg: LaunchConfig) -> Val {
        match op {
            Operand::Reg(r) => fr.regs[r.0 as usize],
            Operand::Imm(i) => Val::scalar(*i as u32),
            Operand::Param(p) => Val::scalar(self.params.get(*p as usize).copied().unwrap_or(0)),
            Operand::Special(s) => Val::scalar(match s {
                SpecialReg::TidX => th.tid,
                SpecialReg::CtaIdX => cta,
                SpecialReg::NTidX => cfg.block,
                SpecialReg::NCtaIdX => cfg.grid,
                SpecialReg::LaneId => th.tid % 32,
                SpecialReg::WarpId => th.tid / 32,
            }),
        }
    }

    /// Run one thread until barrier or completion.
    #[allow(clippy::too_many_arguments)]
    fn step_thread(
        &self,
        th: &mut Thread<'m>,
        cta: u32,
        cfg: LaunchConfig,
        global: &mut [u8],
        shared: &mut [u8],
        stats: &mut InterpStats,
        budget: &mut u64,
    ) -> Result<(), InterpError> {
        loop {
            if *budget == 0 {
                return Err(InterpError::StepLimit);
            }
            *budget -= 1;
            let fi = th.frames.len() - 1;
            let func = self.module.func(th.frames[fi].func);
            let blk = func.block(th.frames[fi].block);
            if th.frames[fi].idx >= blk.insts.len() {
                // Terminator.
                match &blk.term {
                    Terminator::Jump(t) => {
                        th.frames[fi].block = *t;
                        th.frames[fi].idx = 0;
                    }
                    Terminator::Branch { pred, neg, then_bb, else_bb } => {
                        let p = th.preds[pred.0 as usize] ^ neg;
                        th.frames[fi].block = if p { *then_bb } else { *else_bb };
                        th.frames[fi].idx = 0;
                    }
                    Terminator::Ret => {
                        let fr = th.frames.pop().expect("frame");
                        let rets: Vec<Val> =
                            func.rets.iter().map(|r| fr.regs[r.0 as usize]).collect();
                        let caller = th.frames.last_mut().expect("caller frame");
                        for (dst, v) in fr.ret_into.iter().zip(rets) {
                            caller.regs[dst.0 as usize] = v;
                        }
                    }
                    Terminator::Exit => {
                        th.status = ThreadStatus::Done;
                        return Ok(());
                    }
                }
                continue;
            }
            let idx = th.frames[fi].idx;
            th.frames[fi].idx += 1;
            let inst = &blk.insts[idx];
            stats.dyn_insts += 1;
            // Guard predicate.
            if let Some(p) = inst.pred {
                if !(th.preds[p.0 as usize] ^ inst.pred_neg) {
                    continue;
                }
            }
            match &inst.op {
                Opcode::Nop => {}
                Opcode::Bar => {
                    th.status = ThreadStatus::AtBarrier;
                    return Ok(());
                }
                Opcode::Call(callee) => {
                    stats.calls += 1;
                    let ci = inst.call.as_ref().expect("verified call");
                    let target = self.module.func(*callee);
                    let args: Vec<Val> = ci
                        .args
                        .iter()
                        .map(|a| self.operand(th, &th.frames[fi], a, cta, cfg))
                        .collect();
                    let mut regs = vec![Val::default(); target.num_vregs()];
                    for (&p, v) in target.params.iter().zip(args) {
                        regs[p.0 as usize] = v;
                    }
                    th.frames.push(Frame {
                        func: *callee,
                        block: BlockId(0),
                        idx: 0,
                        regs,
                        ret_into: ci.rets.clone(),
                        _ph: std::marker::PhantomData,
                    });
                }
                Opcode::ISetp(_) | Opcode::FSetp(_) => {
                    let s: Vec<Val> = inst
                        .srcs
                        .iter()
                        .map(|o| self.operand(th, &th.frames[fi], o, cta, cfg))
                        .collect();
                    let p = inst.pdst.expect("verified setp");
                    th.preds[p.0 as usize] = eval_setp(&inst.op, &s);
                }
                Opcode::Sel => {
                    let s: Vec<Val> = inst
                        .srcs
                        .iter()
                        .map(|o| self.operand(th, &th.frames[fi], o, cta, cfg))
                        .collect();
                    let p = inst.sel_pred.expect("verified sel");
                    let v = if th.preds[p.0 as usize] { s[0] } else { s[1] };
                    let d = inst.dst.expect("sel dst");
                    th.frames[fi].regs[d.0 as usize] = v;
                }
                Opcode::Ld { space, width, offset } => {
                    let addr_v = self.operand(th, &th.frames[fi], &inst.srcs[0], cta, cfg);
                    let addr = (i64::from(addr_v.as_i32()) + i64::from(*offset)) as u64;
                    let buf: &[u8] = match space {
                        MemSpace::Global => {
                            stats.global_ops += 1;
                            &*global
                        }
                        MemSpace::Shared => {
                            stats.shared_ops += 1;
                            &*shared
                        }
                        MemSpace::Local => {
                            stats.local_ops += 1;
                            &th.local
                        }
                    };
                    let v = read_mem(buf, addr, *width).map_err(|_| InterpError::OutOfBounds {
                        space: *space,
                        addr,
                        len: width.bytes(),
                    })?;
                    let d = inst.dst.expect("load dst");
                    th.frames[fi].regs[d.0 as usize] = v;
                }
                Opcode::St { space, width, offset } => {
                    let addr_v = self.operand(th, &th.frames[fi], &inst.srcs[0], cta, cfg);
                    let val = self.operand(th, &th.frames[fi], &inst.srcs[1], cta, cfg);
                    let addr = (i64::from(addr_v.as_i32()) + i64::from(*offset)) as u64;
                    let buf: &mut [u8] = match space {
                        MemSpace::Global => {
                            stats.global_ops += 1;
                            global
                        }
                        MemSpace::Shared => {
                            stats.shared_ops += 1;
                            shared
                        }
                        MemSpace::Local => {
                            stats.local_ops += 1;
                            &mut th.local
                        }
                    };
                    write_mem(buf, addr, *width, val).map_err(|_| InterpError::OutOfBounds {
                        space: *space,
                        addr,
                        len: width.bytes(),
                    })?;
                }
                alu => {
                    let s: Vec<Val> = inst
                        .srcs
                        .iter()
                        .map(|o| self.operand(th, &th.frames[fi], o, cta, cfg))
                        .collect();
                    let v = eval_alu(alu, &s);
                    if let Some(d) = inst.dst {
                        th.frames[fi].regs[d.0 as usize] = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_fdiv_device, FunctionBuilder};
    use crate::inst::Cmp;
    use crate::types::PredReg;

    fn run(m: &Module, cfg: LaunchConfig, params: &[u32], global_len: usize) -> Vec<u8> {
        let mut global = vec![0u8; global_len];
        Interpreter::new(m, params).run(cfg, &mut global).unwrap();
        global
    }

    #[test]
    fn scale_kernel() {
        // out[tid] = in[tid] * 2
        let mut b = FunctionBuilder::kernel("scale");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        let x = b.ld(MemSpace::Global, Width::W32, a, 0);
        let y = b.iadd(x, x);
        let o = b.imad(tid, Operand::Imm(4), Operand::Param(1));
        b.st(MemSpace::Global, Width::W32, o, y, 0);
        let m = Module::new(b.finish());
        crate::verify::verify(&m).unwrap();

        let mut global = vec![0u8; 64];
        for i in 0..8u32 {
            global[(i * 4) as usize..(i * 4 + 4) as usize].copy_from_slice(&i.to_le_bytes());
        }
        let mut g = global.clone();
        Interpreter::new(&m, &[0, 32]).run(LaunchConfig { grid: 1, block: 8 }, &mut g).unwrap();
        for i in 0..8u32 {
            let off = (32 + i * 4) as usize;
            let v = u32::from_le_bytes(g[off..off + 4].try_into().unwrap());
            assert_eq!(v, 2 * i);
        }
    }

    #[test]
    fn barrier_and_shared_memory() {
        // shared[tid] = tid; bar; out[tid] = shared[block-1-tid]
        let mut b = FunctionBuilder::kernel("rev");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let saddr = b.imul(tid, Operand::Imm(4));
        b.st(MemSpace::Shared, Width::W32, saddr, tid, 0);
        b.bar();
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let last = b.isub(nt, Operand::Imm(1));
        let ridx = b.isub(last, tid);
        let raddr = b.imul(ridx, Operand::Imm(4));
        let v = b.ld(MemSpace::Shared, Width::W32, raddr, 0);
        let out = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        b.st(MemSpace::Global, Width::W32, out, v, 0);
        let mut m = Module::new(b.finish());
        m.user_smem_bytes = 4 * 8;
        crate::verify::verify(&m).unwrap();

        let g = run(&m, LaunchConfig { grid: 1, block: 8 }, &[0], 32);
        for i in 0..8u32 {
            let off = (i * 4) as usize;
            let v = u32::from_le_bytes(g[off..off + 4].try_into().unwrap());
            assert_eq!(v, 7 - i);
        }
    }

    #[test]
    fn device_call_fdiv() {
        // out = 10 / 4 computed through the division intrinsic call.
        let mut kb = FunctionBuilder::kernel("k");
        let _ = kb.mov_f32(10.0);
        let _ = kb.mov_f32(4.0);
        let mut m = Module::new(kb.finish());
        let fdiv = m.add_func(build_fdiv_device());
        let mut kb = FunctionBuilder::kernel("k");
        let x2 = kb.mov_f32(10.0);
        let y2 = kb.mov_f32(4.0);
        let q = kb.call(fdiv, vec![x2.into(), y2.into()], &[Width::W32]);
        kb.st(MemSpace::Global, Width::W32, Operand::Imm(0), q[0], 0);
        m.funcs[0] = kb.finish();
        crate::verify::verify(&m).unwrap();

        let g = run(&m, LaunchConfig { grid: 1, block: 1 }, &[], 4);
        let v = f32::from_bits(u32::from_le_bytes(g[0..4].try_into().unwrap()));
        assert!((v - 2.5).abs() < 1e-5, "{v}");
    }

    #[test]
    fn divergent_branch_per_thread() {
        // out[tid] = tid % 2 == 0 ? 100 : 200
        let mut b = FunctionBuilder::kernel("div");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let bit = b.and(tid, Operand::Imm(1));
        b.isetp(Cmp::Eq, bit, Operand::Imm(0), PredReg(0));
        let even = b.new_block();
        let odd = b.new_block();
        let join = b.new_block();
        let out = b.vreg(Width::W32);
        b.branch(PredReg(0), false, even, odd);
        b.switch_to(even);
        b.push(crate::inst::Inst::new(Opcode::Mov, Some(out), vec![Operand::Imm(100)]));
        b.jump(join);
        b.switch_to(odd);
        b.push(crate::inst::Inst::new(Opcode::Mov, Some(out), vec![Operand::Imm(200)]));
        b.jump(join);
        b.switch_to(join);
        let a = b.imad(tid, Operand::Imm(4), Operand::Param(0));
        b.st(MemSpace::Global, Width::W32, a, out, 0);
        b.exit();
        let m = Module::new(b.finish());
        crate::verify::verify(&m).unwrap();

        let g = run(&m, LaunchConfig { grid: 1, block: 4 }, &[0], 16);
        let vals: Vec<u32> =
            (0..4).map(|i| u32::from_le_bytes(g[i * 4..i * 4 + 4].try_into().unwrap())).collect();
        assert_eq!(vals, vec![100, 200, 100, 200]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = FunctionBuilder::kernel("oob");
        b.st(MemSpace::Global, Width::W32, Operand::Imm(1024), Operand::Imm(1), 0);
        let m = Module::new(b.finish());
        let mut g = vec![0u8; 16];
        let err =
            Interpreter::new(&m, &[]).run(LaunchConfig { grid: 1, block: 1 }, &mut g).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { .. }));
    }

    #[test]
    fn multi_block_grid() {
        // out[cta * ntid + tid] = cta
        let mut b = FunctionBuilder::kernel("grid");
        let tid = b.mov(Operand::Special(SpecialReg::TidX));
        let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
        let nt = b.mov(Operand::Special(SpecialReg::NTidX));
        let lin = b.imad(cta, nt, tid);
        let a = b.imad(lin, Operand::Imm(4), Operand::Param(0));
        b.st(MemSpace::Global, Width::W32, a, cta, 0);
        let m = Module::new(b.finish());
        let g = run(&m, LaunchConfig { grid: 3, block: 2 }, &[0], 24);
        let vals: Vec<u32> =
            (0..6).map(|i| u32::from_le_bytes(g[i * 4..i * 4 + 4].try_into().unwrap())).collect();
        assert_eq!(vals, vec![0, 0, 1, 1, 2, 2]);
    }
}
