//! IR verifier: structural and type checks run before compilation.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::function::{FuncKind, Module, Terminator};
use crate::inst::{Opcode, Operand};
use crate::liveness::Liveness;
use crate::types::{BlockId, FuncId, VReg, Width, NUM_PRED_REGS};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Register id out of the function's vreg table.
    BadVReg { func: String, reg: VReg },
    /// Predicate register id ≥ [`NUM_PRED_REGS`].
    BadPred { func: String },
    /// Operand/destination width mismatch for an opcode.
    WidthMismatch { func: String, block: BlockId, idx: usize, detail: String },
    /// Wrong number of sources for an opcode.
    ArityMismatch { func: String, block: BlockId, idx: usize },
    /// Call argument/return shape disagrees with the callee signature.
    BadCall { func: String, callee: FuncId, detail: String },
    /// Branch target out of range.
    BadTarget { func: String, block: BlockId },
    /// Kernel contains `Ret`, or a device function contains `Exit`, or a
    /// device function does not have exactly one `Ret` block.
    BadTerminator { func: String, detail: String },
    /// A register may be read before any write reaches it.
    UseBeforeDef { func: String, reg: VReg },
    /// The module's call graph is recursive.
    Recursion { func: FuncId },
    /// Module entry is not a kernel.
    BadEntry,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadVReg { func, reg } => write!(f, "{func}: unknown register {reg}"),
            VerifyError::BadPred { func } => write!(f, "{func}: predicate register out of range"),
            VerifyError::WidthMismatch { func, block, idx, detail } => {
                write!(f, "{func}:{block}[{idx}]: width mismatch: {detail}")
            }
            VerifyError::ArityMismatch { func, block, idx } => {
                write!(f, "{func}:{block}[{idx}]: wrong operand count")
            }
            VerifyError::BadCall { func, callee, detail } => {
                write!(f, "{func}: bad call to {callee}: {detail}")
            }
            VerifyError::BadTarget { func, block } => {
                write!(f, "{func}:{block}: branch target out of range")
            }
            VerifyError::BadTerminator { func, detail } => write!(f, "{func}: {detail}"),
            VerifyError::UseBeforeDef { func, reg } => {
                write!(f, "{func}: {reg} may be read before written")
            }
            VerifyError::Recursion { func } => write!(f, "recursion through {func}"),
            VerifyError::BadEntry => write!(f, "module entry is not a kernel"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Expected source arity of an opcode (`None` = variable).
fn arity(op: &Opcode) -> Option<usize> {
    use Opcode::*;
    Some(match op {
        IAdd | ISub | IMul | IMin | IMax | Shl | Shr | And | Or | Xor | FAdd | FSub | FMul
        | FMin | FMax | DAdd | DMul | ISetp(_) | FSetp(_) => 2,
        IMad | FFma | DFma => 3,
        Not | FNeg | FAbs | FRcp | FSqrt | I2F | F2I | Mov | Unpack { .. } => 1,
        Sel => 2,
        Pack { .. } => 2,
        Ld { .. } => 1,
        St { .. } => 2,
        Call(_) => 0,
        Bar | Nop => 0,
    })
}

fn check_function(m: &Module, fid: FuncId) -> Result<(), VerifyError> {
    let f = m.func(fid);
    let name = f.name.clone();
    let nv = f.num_vregs();
    let nb = f.num_blocks();
    let chk_reg = |r: VReg| -> Result<(), VerifyError> {
        if (r.0 as usize) < nv {
            Ok(())
        } else {
            Err(VerifyError::BadVReg { func: name.clone(), reg: r })
        }
    };
    let w = |r: VReg| f.width(r);

    // Terminator discipline.
    let mut ret_blocks = 0;
    for (bid, b) in f.iter_blocks() {
        match &b.term {
            Terminator::Jump(t) => {
                if t.0 as usize >= nb {
                    return Err(VerifyError::BadTarget { func: name.clone(), block: bid });
                }
            }
            Terminator::Branch { pred, then_bb, else_bb, .. } => {
                if pred.0 >= NUM_PRED_REGS {
                    return Err(VerifyError::BadPred { func: name.clone() });
                }
                if then_bb.0 as usize >= nb || else_bb.0 as usize >= nb {
                    return Err(VerifyError::BadTarget { func: name.clone(), block: bid });
                }
            }
            Terminator::Ret => {
                if f.kind == FuncKind::Kernel {
                    return Err(VerifyError::BadTerminator {
                        func: name.clone(),
                        detail: "kernel contains Ret".into(),
                    });
                }
                ret_blocks += 1;
            }
            Terminator::Exit => {
                if f.kind == FuncKind::Device {
                    return Err(VerifyError::BadTerminator {
                        func: name.clone(),
                        detail: "device function contains Exit".into(),
                    });
                }
            }
        }
    }
    if f.kind == FuncKind::Device && ret_blocks != 1 {
        return Err(VerifyError::BadTerminator {
            func: name.clone(),
            detail: format!("device function has {ret_blocks} Ret blocks, expected 1"),
        });
    }

    for (bid, b) in f.iter_blocks() {
        for (idx, inst) in b.insts.iter().enumerate() {
            for r in inst.uses().chain(inst.defs()) {
                chk_reg(r)?;
            }
            if let Some(p) = inst.pred {
                if p.0 >= NUM_PRED_REGS {
                    return Err(VerifyError::BadPred { func: name.clone() });
                }
            }
            if let Some(p) = inst.pdst {
                if p.0 >= NUM_PRED_REGS {
                    return Err(VerifyError::BadPred { func: name.clone() });
                }
            }
            if let Some(n) = arity(&inst.op) {
                if inst.srcs.len() != n {
                    return Err(VerifyError::ArityMismatch { func: name.clone(), block: bid, idx });
                }
            }
            let mismatch = |detail: String| VerifyError::WidthMismatch {
                func: name.clone(),
                block: bid,
                idx,
                detail,
            };
            let opw = |o: &Operand| o.as_reg().map(w);
            use Opcode::*;
            match &inst.op {
                IAdd | ISub | IMul | IMad | IMin | IMax | Shl | Shr | And | Or | Xor | Not
                | FAdd | FSub | FMul | FFma | FMin | FMax | FNeg | FAbs | FRcp | FSqrt | I2F
                | F2I | Sel => {
                    for s in &inst.srcs {
                        if opw(s) == Some(Width::W64)
                            || opw(s) == Some(Width::W96)
                            || opw(s) == Some(Width::W128)
                        {
                            return Err(mismatch("32-bit op with wide source".into()));
                        }
                    }
                    if let Some(d) = inst.dst {
                        if w(d) != Width::W32 {
                            return Err(mismatch("32-bit op with wide destination".into()));
                        }
                    }
                    if matches!(inst.op, Sel) && inst.sel_pred.is_none() {
                        return Err(mismatch("Sel without selector predicate".into()));
                    }
                }
                DAdd | DMul | DFma => {
                    for s in &inst.srcs {
                        if let Some(sw) = opw(s) {
                            if sw != Width::W64 {
                                return Err(mismatch("f64 op with non-W64 source".into()));
                            }
                        }
                    }
                    if let Some(d) = inst.dst {
                        if w(d) != Width::W64 {
                            return Err(mismatch("f64 op with non-W64 destination".into()));
                        }
                    }
                }
                ISetp(_) | FSetp(_) => {
                    if inst.pdst.is_none() {
                        return Err(mismatch("setp without predicate destination".into()));
                    }
                }
                Mov => {
                    if let (Some(d), Some(sw)) = (inst.dst, opw(&inst.srcs[0])) {
                        if w(d) != sw {
                            return Err(mismatch("mov width mismatch".into()));
                        }
                    }
                }
                Unpack { lane } => {
                    let sw = opw(&inst.srcs[0])
                        .ok_or_else(|| mismatch("unpack of non-register".into()))?;
                    if u16::from(*lane) >= sw.words() {
                        return Err(mismatch("unpack lane out of range".into()));
                    }
                    if let Some(d) = inst.dst {
                        if w(d) != Width::W32 {
                            return Err(mismatch("unpack destination must be W32".into()));
                        }
                    }
                }
                Pack { lane } => {
                    let sw = opw(&inst.srcs[0])
                        .ok_or_else(|| mismatch("pack of non-register".into()))?;
                    if u16::from(*lane) >= sw.words() {
                        return Err(mismatch("pack lane out of range".into()));
                    }
                    if let Some(d) = inst.dst {
                        if w(d) != sw {
                            return Err(mismatch("pack width mismatch".into()));
                        }
                    }
                }
                Ld { width, .. } => {
                    if let Some(d) = inst.dst {
                        if w(d) != *width {
                            return Err(mismatch("load width mismatch".into()));
                        }
                    }
                }
                St { width, .. } => {
                    if let Some(sw) = opw(&inst.srcs[1]) {
                        if sw != *width {
                            return Err(mismatch("store width mismatch".into()));
                        }
                    }
                }
                Call(callee) => {
                    let ci = inst.call.as_ref().ok_or_else(|| VerifyError::BadCall {
                        func: name.clone(),
                        callee: *callee,
                        detail: "missing call info".into(),
                    })?;
                    if callee.0 as usize >= m.funcs.len() {
                        return Err(VerifyError::BadCall {
                            func: name.clone(),
                            callee: *callee,
                            detail: "unknown callee".into(),
                        });
                    }
                    let target = m.func(*callee);
                    if target.kind != FuncKind::Device {
                        return Err(VerifyError::BadCall {
                            func: name.clone(),
                            callee: *callee,
                            detail: "call target is not a device function".into(),
                        });
                    }
                    if ci.args.len() != target.params.len() {
                        return Err(VerifyError::BadCall {
                            func: name.clone(),
                            callee: *callee,
                            detail: format!(
                                "{} args, callee takes {}",
                                ci.args.len(),
                                target.params.len()
                            ),
                        });
                    }
                    if ci.rets.len() != target.rets.len() {
                        return Err(VerifyError::BadCall {
                            func: name.clone(),
                            callee: *callee,
                            detail: format!(
                                "{} rets, callee returns {}",
                                ci.rets.len(),
                                target.rets.len()
                            ),
                        });
                    }
                    for (a, &p) in ci.args.iter().zip(&target.params) {
                        if let Some(aw) = opw(a) {
                            if aw != target.width(p) {
                                return Err(VerifyError::BadCall {
                                    func: name.clone(),
                                    callee: *callee,
                                    detail: "argument width mismatch".into(),
                                });
                            }
                        }
                    }
                    for (&r, &tr) in ci.rets.iter().zip(&target.rets) {
                        if w(r) != target.width(tr) {
                            return Err(VerifyError::BadCall {
                                func: name.clone(),
                                callee: *callee,
                                detail: "return width mismatch".into(),
                            });
                        }
                    }
                }
                Bar | Nop => {}
            }
        }
    }

    // Use-before-def: nothing may be live into the entry except params.
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    for v in live.live_in[0].iter() {
        let r = VReg(v as u32);
        if !f.params.contains(&r) {
            return Err(VerifyError::UseBeforeDef { func: name.clone(), reg: r });
        }
    }
    Ok(())
}

/// Verify a whole module.
///
/// # Errors
/// Returns the first [`VerifyError`] found; a `Ok(())` module is safe to
/// feed to SSA construction, allocation, and the simulator.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    if m.kernel().kind != FuncKind::Kernel {
        return Err(VerifyError::BadEntry);
    }
    let cg = CallGraph::new(m);
    cg.bottom_up(m.entry).map_err(|e| VerifyError::Recursion { func: e.func })?;
    for (fid, _) in m.iter_funcs() {
        check_function(m, fid)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::inst::Inst;

    #[test]
    fn empty_kernel_verifies() {
        let m = Module::new(Function::new("k", FuncKind::Kernel));
        assert_eq!(verify(&m), Ok(()));
    }

    #[test]
    fn unknown_register_rejected() {
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts =
            vec![Inst::new(Opcode::Mov, Some(VReg(7)), vec![Operand::Imm(0)])];
        assert!(matches!(verify(&m), Err(VerifyError::BadVReg { .. })));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let f = m.func_mut(FuncId(0));
        let wide = f.new_vreg(Width::W64);
        f.block_mut(BlockId(0)).insts =
            vec![Inst::new(Opcode::IAdd, Some(wide), vec![Operand::Imm(1), Operand::Imm(2)])];
        assert!(matches!(verify(&m), Err(VerifyError::WidthMismatch { .. })));
    }

    #[test]
    fn use_before_def_rejected() {
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let f = m.func_mut(FuncId(0));
        let v = f.new_vreg(Width::W32);
        let d = f.new_vreg(Width::W32);
        f.block_mut(BlockId(0)).insts =
            vec![Inst::new(Opcode::IAdd, Some(d), vec![v.into(), Operand::Imm(2)])];
        assert!(matches!(verify(&m), Err(VerifyError::UseBeforeDef { .. })));
    }

    #[test]
    fn kernel_with_ret_rejected() {
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).term = Terminator::Ret;
        assert!(matches!(verify(&m), Err(VerifyError::BadTerminator { .. })));
    }

    #[test]
    fn call_arity_checked() {
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let mut dev = Function::new("d", FuncKind::Device);
        let p = dev.new_vreg(Width::W32);
        dev.params = vec![p];
        let id = m.add_func(dev);
        let mut call = Inst::new(Opcode::Call(id), None, vec![]);
        call.call = Some(crate::inst::CallInfo { args: vec![], rets: vec![] });
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts = vec![call];
        assert!(matches!(verify(&m), Err(VerifyError::BadCall { .. })));
    }
}
