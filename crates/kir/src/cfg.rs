//! Control-flow graph analyses: predecessors, reverse postorder,
//! dominators (Cooper-Harvey-Kennedy), dominance frontiers, and immediate
//! post-dominators (used as SIMT reconvergence points).

use crate::function::{Function, Terminator};
use crate::types::BlockId;

/// Control-flow graph of a function with derived orderings.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Reverse postorder over blocks reachable from the entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` if unreachable.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Build the CFG of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, b) in f.iter_blocks() {
            for s in b.term.successors() {
                succs[bid.0 as usize].push(s);
                preds[s.0 as usize].push(bid);
            }
        }
        // Iterative DFS postorder from entry.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if state[next.0 as usize] == 0 {
                    state[next.0 as usize] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg { succs, preds, rpo, rpo_index }
    }

    /// True if the block is reachable from the entry.
    #[inline]
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }

    /// Number of blocks (including unreachable ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the function has no blocks (never happens for valid IR).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Immediate-dominator tree computed with the Cooper-Harvey-Kennedy
/// iterative algorithm.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return Dominators { idom };
        }
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if new_idom != idom[b.0 as usize] && new_idom.is_some() {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// Does `a` dominate `b`? (Reflexive.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Dominance frontier of every block (Cytron et al.).
    pub fn frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = cfg.len();
        let mut df = vec![Vec::new(); n];
        for b in 0..n {
            let bid = BlockId(b as u32);
            if !cfg.reachable(bid) || cfg.preds[b].len() < 2 {
                continue;
            }
            let idom_b = match self.idom[b] {
                Some(d) => d,
                None => continue,
            };
            for &p in &cfg.preds[b] {
                if self.idom[p.0 as usize].is_none() {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    let dfr = &mut df[runner.0 as usize];
                    if !dfr.contains(&bid) {
                        dfr.push(bid);
                    }
                    runner = match self.idom[runner.0 as usize] {
                        Some(d) if d != runner => d,
                        _ => break,
                    };
                }
            }
        }
        df
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block");
        }
    }
    a
}

/// Immediate post-dominators, computed on the reverse CFG with a virtual
/// exit node joining all `Ret`/`Exit` blocks. Used by the simulator as
/// SIMT reconvergence points for divergent branches.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// Immediate post-dominator of each block; `None` when the block
    /// post-dominates everything on its paths (i.e. its ipdom is the
    /// virtual exit).
    pub ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    /// Compute post-dominators of `f`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = cfg.len();
        // Virtual node index n; reverse edges.
        let vexit = n;
        let total = n + 1;
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); total]; // succ in reverse graph = preds
        let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (bid, b) in f.iter_blocks() {
            let i = bid.0 as usize;
            for s in b.term.successors() {
                // reverse edge s -> b
                rsuccs[s.0 as usize].push(i);
                rpreds[i].push(s.0 as usize);
            }
            if matches!(b.term, Terminator::Ret | Terminator::Exit) {
                rsuccs[vexit].push(i);
                rpreds[i].push(vexit);
            }
        }
        // RPO over the reverse graph from vexit.
        let mut post = Vec::with_capacity(total);
        let mut state = vec![0u8; total];
        let mut stack = vec![(vexit, 0usize)];
        state[vexit] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < rsuccs[b].len() {
                let next = rsuccs[b][*i];
                *i += 1;
                if state[next] == 0 {
                    state[next] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; total];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; total];
        idom[vexit] = Some(vexit);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &rpreds[b] {
                    if idom[p].is_none() || rpo_index[p] == usize::MAX {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            let (mut a, mut c) = (p, cur);
                            while a != c {
                                while rpo_index[a] > rpo_index[c] {
                                    a = idom[a].unwrap();
                                }
                                while rpo_index[c] > rpo_index[a] {
                                    c = idom[c].unwrap();
                                }
                            }
                            a
                        }
                    });
                }
                if new_idom.is_some() && new_idom != idom[b] {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        let ipdom = (0..n)
            .map(|b| match idom[b] {
                Some(d) if d != vexit && d != b => Some(BlockId(d as u32)),
                _ => None,
            })
            .collect();
        PostDominators { ipdom }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FuncKind, Function, Terminator};
    use crate::types::PredReg;

    /// Diamond: 0 -> {1,2} -> 3(exit)
    fn diamond() -> Function {
        let mut f = Function::new("d", FuncKind::Kernel);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.block_mut(BlockId(0)).term =
            Terminator::Branch { pred: PredReg(0), neg: false, then_bb: b1, else_bb: b2 };
        f.block_mut(b1).term = Terminator::Jump(b3);
        f.block_mut(b2).term = Terminator::Jump(b3);
        f.block_mut(b3).term = Terminator::Exit;
        f
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert!(cfg.reachable(BlockId(3)));
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom[1], Some(BlockId(0)));
        assert_eq!(dom.idom[2], Some(BlockId(0)));
        assert_eq!(dom.idom[3], Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let df = dom.frontiers(&cfg);
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
    }

    #[test]
    fn diamond_postdominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let pd = PostDominators::new(&f, &cfg);
        // Reconvergence point of the branch at block 0 is block 3.
        assert_eq!(pd.ipdom[0], Some(BlockId(3)));
        assert_eq!(pd.ipdom[1], Some(BlockId(3)));
        assert_eq!(pd.ipdom[3], None);
    }

    /// Loop: 0 -> 1; 1 -> {1, 2}; 2 exit.
    #[test]
    fn loop_dominators_and_frontier() {
        let mut f = Function::new("l", FuncKind::Kernel);
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.block_mut(BlockId(0)).term = Terminator::Jump(b1);
        f.block_mut(b1).term =
            Terminator::Branch { pred: PredReg(0), neg: false, then_bb: b1, else_bb: b2 };
        f.block_mut(b2).term = Terminator::Exit;
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom[1], Some(BlockId(0)));
        assert_eq!(dom.idom[2], Some(BlockId(1)));
        let df = dom.frontiers(&cfg);
        // The loop header is in its own dominance frontier.
        assert!(df[1].contains(&BlockId(1)));
        let pd = PostDominators::new(&f, &cfg);
        assert_eq!(pd.ipdom[1], Some(BlockId(2)));
    }

    #[test]
    fn unreachable_block_ignored() {
        let mut f = diamond();
        let dead = f.new_block();
        f.block_mut(dead).term = Terminator::Exit;
        let cfg = Cfg::new(&f);
        assert!(!cfg.reachable(dead));
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom[dead.0 as usize], None);
    }
}
