//! Call-graph construction, recursion detection, and bottom-up ordering.
//!
//! GPU device code forms a call DAG (no recursion: every thread has a
//! tiny local stack). The inter-procedural allocator processes functions
//! bottom-up so each caller knows its callees' frame sizes.

use crate::function::Module;
use crate::types::FuncId;

/// Call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct callees per function (deduplicated, in first-call order).
    pub callees: Vec<Vec<FuncId>>,
    /// Direct callers per function.
    pub callers: Vec<Vec<FuncId>>,
}

/// Error for recursive call graphs, which the GPU model forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursionError {
    /// A function participating in a call cycle.
    pub func: FuncId,
}

impl std::fmt::Display for RecursionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "recursive call graph through {}", self.func)
    }
}

impl std::error::Error for RecursionError {}

impl CallGraph {
    /// Build the call graph of `m`.
    pub fn new(m: &Module) -> Self {
        let n = m.funcs.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for (fid, f) in m.iter_funcs() {
            for (_, _, callee) in f.call_sites() {
                if !callees[fid.0 as usize].contains(&callee) {
                    callees[fid.0 as usize].push(callee);
                    callers[callee.0 as usize].push(fid);
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions in bottom-up (callees before callers) order, restricted
    /// to those reachable from `entry`.
    ///
    /// # Errors
    /// Returns [`RecursionError`] if the reachable subgraph has a cycle.
    pub fn bottom_up(&self, entry: FuncId) -> Result<Vec<FuncId>, RecursionError> {
        let n = self.callees.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        let mut order = Vec::new();
        // Iterative DFS with cycle detection.
        let mut stack: Vec<(FuncId, usize)> = vec![(entry, 0)];
        state[entry.0 as usize] = 1;
        while let Some(&mut (f, ref mut i)) = stack.last_mut() {
            let cs = &self.callees[f.0 as usize];
            if *i < cs.len() {
                let c = cs[*i];
                *i += 1;
                match state[c.0 as usize] {
                    0 => {
                        state[c.0 as usize] = 1;
                        stack.push((c, 0));
                    }
                    1 => return Err(RecursionError { func: c }),
                    _ => {}
                }
            } else {
                state[f.0 as usize] = 2;
                order.push(f);
                stack.pop();
            }
        }
        Ok(order)
    }

    /// Maximum call depth from `entry` (1 = no calls).
    pub fn max_depth(&self, entry: FuncId) -> usize {
        fn depth(cg: &CallGraph, f: FuncId, memo: &mut [Option<usize>]) -> usize {
            if let Some(d) = memo[f.0 as usize] {
                return d;
            }
            let d =
                1 + cg.callees[f.0 as usize].iter().map(|&c| depth(cg, c, memo)).max().unwrap_or(0);
            memo[f.0 as usize] = Some(d);
            d
        }
        let mut memo = vec![None; self.callees.len()];
        depth(self, entry, &mut memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FuncKind, Function};
    use crate::inst::{CallInfo, Inst, Opcode};
    use crate::types::BlockId;

    fn call_inst(target: FuncId) -> Inst {
        let mut i = Inst::new(Opcode::Call(target), None, vec![]);
        i.call = Some(CallInfo { args: vec![], rets: vec![] });
        i
    }

    fn chain_module() -> Module {
        // kernel -> a -> b, kernel -> b
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let a = m.add_func(Function::new("a", FuncKind::Device));
        let b = m.add_func(Function::new("b", FuncKind::Device));
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts = vec![call_inst(a), call_inst(b)];
        m.func_mut(a).block_mut(BlockId(0)).insts = vec![call_inst(b)];
        m
    }

    #[test]
    fn bottom_up_order() {
        let m = chain_module();
        let cg = CallGraph::new(&m);
        let order = cg.bottom_up(FuncId(0)).unwrap();
        assert_eq!(order.last(), Some(&FuncId(0)));
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(FuncId(2)) < pos(FuncId(1)), "b before a");
    }

    #[test]
    fn max_depth() {
        let m = chain_module();
        let cg = CallGraph::new(&m);
        assert_eq!(cg.max_depth(FuncId(0)), 3);
    }

    #[test]
    fn recursion_detected() {
        let mut m = Module::new(Function::new("k", FuncKind::Kernel));
        let a = m.add_func(Function::new("a", FuncKind::Device));
        m.func_mut(FuncId(0)).block_mut(BlockId(0)).insts = vec![call_inst(a)];
        m.func_mut(a).block_mut(BlockId(0)).insts = vec![call_inst(a)];
        let cg = CallGraph::new(&m);
        assert!(cg.bottom_up(FuncId(0)).is_err());
    }

    #[test]
    fn callers_populated() {
        let m = chain_module();
        let cg = CallGraph::new(&m);
        assert_eq!(cg.callers[2], vec![FuncId(0), FuncId(1)]);
    }
}
