//! Fundamental value and register types for the kernel IR.
//!
//! The IR models a SASS-like virtual machine: 32-bit general-purpose
//! registers, with *wide* values (64/96/128-bit) occupying consecutive,
//! aligned registers — the property that makes the paper's coloring
//! variant (Figure 4) interesting. Predicate registers form a separate,
//! small class that does not participate in occupancy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Width of a virtual register value, in units of 32-bit words.
///
/// Wide values must be stored in consecutive physical registers whose
/// first register index is aligned to the value's word count (64-bit
/// values start at even registers, 128-bit at multiples of four), per the
/// NVIDIA register-pair constraints described in the paper's platform
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 32-bit scalar (one register).
    W32,
    /// 64-bit value (register pair, even-aligned).
    W64,
    /// 96-bit value (three registers; alignment of the containing quad).
    W96,
    /// 128-bit value (register quad, quad-aligned).
    W128,
}

impl Width {
    /// Number of 32-bit register slots the value occupies.
    #[inline]
    pub fn words(self) -> u16 {
        match self {
            Width::W32 => 1,
            Width::W64 => 2,
            Width::W96 => 3,
            Width::W128 => 4,
        }
    }

    /// Required alignment (in register slots) of the first register.
    ///
    /// 96-bit values align like 128-bit ones, matching the hardware rule
    /// that wide operands are addressed as aligned pairs/quads.
    #[inline]
    pub fn alignment(self) -> u16 {
        match self {
            Width::W32 => 1,
            Width::W64 => 2,
            Width::W96 | Width::W128 => 4,
        }
    }

    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        u32::from(self.words()) * 4
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::W32, Width::W64, Width::W96, Width::W128];
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.bytes() * 8 / 4 * 4) // bits
    }
}

/// A virtual register: an SSA-or-not value name local to one [`Function`].
///
/// [`Function`]: crate::function::Function
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A predicate register. Predicates are a separate register class with a
/// fixed, small file (7 per thread on the modeled devices) that does not
/// count toward occupancy; the allocator never spills them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PredReg(pub u8);

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Maximum number of predicate registers per thread.
pub const NUM_PRED_REGS: u8 = 7;

/// Hardware-provided special (read-only) registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialReg {
    /// Thread index within the block (x dimension).
    TidX,
    /// Block index within the grid (x dimension).
    CtaIdX,
    /// Threads per block.
    NTidX,
    /// Blocks in the grid.
    NCtaIdX,
    /// Lane index within the warp (`tid % 32`).
    LaneId,
    /// Warp index within the block (`tid / 32`).
    WarpId,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

/// Memory spaces addressable by load/store instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Off-chip DRAM, cached in L2 (and, on Fermi, L1).
    Global,
    /// On-chip software-managed cache, per thread block.
    Shared,
    /// Per-thread spill/stack space; interleaved so that warp accesses
    /// coalesce, cached in L1 on both modeled devices.
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
        };
        f.write_str(s)
    }
}

/// Identifier of a function within a [`Module`].
///
/// [`Module`]: crate::function::Module
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_words_and_alignment() {
        assert_eq!(Width::W32.words(), 1);
        assert_eq!(Width::W64.words(), 2);
        assert_eq!(Width::W96.words(), 3);
        assert_eq!(Width::W128.words(), 4);
        assert_eq!(Width::W32.alignment(), 1);
        assert_eq!(Width::W64.alignment(), 2);
        assert_eq!(Width::W96.alignment(), 4);
        assert_eq!(Width::W128.alignment(), 4);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W32.bytes(), 4);
        assert_eq!(Width::W128.bytes(), 16);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VReg(3).to_string(), "v3");
        assert_eq!(PredReg(1).to_string(), "p1");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(FuncId(2).to_string(), "f2");
        assert_eq!(MemSpace::Shared.to_string(), "shared");
        assert_eq!(SpecialReg::TidX.to_string(), "%tid.x");
    }
}
