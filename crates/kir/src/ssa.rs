//! SSA construction and pruned-SSA web coalescing.
//!
//! The paper's pipeline (§3.2) represents the program in SSA form,
//! generates *pruned* SSA, and eliminates φ-functions before assigning
//! variables to on-chip memory slots. We reproduce that as:
//!
//! 1. [`to_ssa`] — classic Cytron et al. construction with pruned φ
//!    placement (a φ for `v` is inserted at a join only where `v` is
//!    live-in);
//! 2. [`coalesce_phis`] — union-find over each φ's destination and
//!    arguments, producing *webs*: the paper's "variable sets";
//! 3. [`to_web_function`] — rewrite every SSA value to its web
//!    representative, at which point all φs are no-ops and are dropped.
//!
//! [`normalize`] composes the three. The output is semantically identical
//! to the input but has maximally split live ranges: two unrelated reuses
//! of the same source variable become distinct webs that the allocator
//! may place in different slots.

use crate::cfg::{Cfg, Dominators};
use crate::function::Function;
use crate::liveness::Liveness;
use crate::types::{BlockId, VReg, Width};

/// A φ-function: `dst = φ(args)` with one argument per predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phi {
    pub dst: VReg,
    /// `(predecessor block, incoming value)` pairs.
    pub args: Vec<(BlockId, VReg)>,
    /// The source variable this φ merges (for diagnostics).
    pub var: VReg,
}

/// A function in SSA form: renamed body plus φ-functions per block.
#[derive(Debug, Clone)]
pub struct SsaFunction {
    /// The renamed function. Instruction operands refer to SSA values.
    pub func: Function,
    /// φ-functions at the head of each block.
    pub phis: Vec<Vec<Phi>>,
    /// Source variable of each SSA value (for diagnostics/tests).
    pub origin: Vec<VReg>,
    /// `(old value, new value)` pairs from *predicated* destinations:
    /// the write is partial (guard may be false), so both values must
    /// land in the same slot. Coalescing unions each pair.
    pub pred_pairs: Vec<(VReg, VReg)>,
}

/// Errors produced by SSA construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaError {
    /// A register is read on a path where it was never written.
    UseBeforeDef { var: VReg, block: BlockId },
    /// A device function has zero or more than one `Ret` block.
    NonUniqueRet,
}

impl std::fmt::Display for SsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsaError::UseBeforeDef { var, block } => {
                write!(f, "use of {var} before definition in {block}")
            }
            SsaError::NonUniqueRet => write!(f, "device function must have exactly one ret block"),
        }
    }
}

impl std::error::Error for SsaError {}

/// Convert `f` to pruned SSA form.
///
/// # Errors
/// Returns [`SsaError::UseBeforeDef`] if a register may be read before any
/// write reaches it, and [`SsaError::NonUniqueRet`] for device functions
/// with multiple `Ret` blocks (the builder emits exactly one).
pub fn to_ssa(f: &Function) -> Result<SsaFunction, SsaError> {
    let cfg = Cfg::new(f);
    let dom = Dominators::new(&cfg);
    let df = dom.frontiers(&cfg);
    let live = Liveness::new(f, &cfg);
    let nb = f.num_blocks();
    let nv = f.num_vregs();

    if f.kind == crate::function::FuncKind::Device {
        let ret_blocks = f
            .iter_blocks()
            .filter(|(_, b)| matches!(b.term, crate::function::Terminator::Ret))
            .count();
        if ret_blocks != 1 {
            return Err(SsaError::NonUniqueRet);
        }
    }

    // Def sites per variable.
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); nv];
    for (bid, b) in f.iter_blocks() {
        for inst in &b.insts {
            for d in inst.defs() {
                let v = &mut def_blocks[d.0 as usize];
                if v.last() != Some(&bid) {
                    v.push(bid);
                }
            }
        }
    }
    for &p in &f.params {
        def_blocks[p.0 as usize].push(BlockId(0));
    }

    // Pruned φ placement: iterated dominance frontier ∩ live-in.
    let mut phi_vars: Vec<Vec<VReg>> = vec![Vec::new(); nb];
    for (v, defs) in def_blocks.iter().enumerate().take(nv) {
        let mut work: Vec<BlockId> = defs.clone();
        let mut placed = vec![false; nb];
        let mut in_work = vec![false; nb];
        for &b in &work {
            in_work[b.0 as usize] = true;
        }
        while let Some(b) = work.pop() {
            for &y in &df[b.0 as usize] {
                let yi = y.0 as usize;
                if !placed[yi] && live.live_in[yi].contains(v) {
                    placed[yi] = true;
                    phi_vars[yi].push(VReg(v as u32));
                    if !in_work[yi] {
                        in_work[yi] = true;
                        work.push(y);
                    }
                }
            }
        }
    }

    // Dominator-tree children for the renaming walk.
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); nb];
    for b in 0..nb {
        let bid = BlockId(b as u32);
        if b != 0 && cfg.reachable(bid) {
            if let Some(d) = dom.idom[b] {
                children[d.0 as usize].push(bid);
            }
        }
    }

    let mut out = Function::new(f.name.clone(), f.kind);
    out.blocks = f.blocks.clone();
    out.vreg_widths = Vec::new();
    out.user_note_clear();

    let mut origin: Vec<VReg> = Vec::new();
    let new_val = |widths: &mut Vec<Width>, origin: &mut Vec<VReg>, var: VReg| -> VReg {
        let r = VReg(widths.len() as u32);
        widths.push(f.width(var));
        origin.push(var);
        r
    };

    let mut phis: Vec<Vec<Phi>> = vec![Vec::new(); nb];
    for (b, vars) in phi_vars.iter().enumerate() {
        for &v in vars {
            phis[b].push(Phi {
                dst: VReg(u32::MAX), // filled during renaming
                args: Vec::new(),
                var: v,
            });
        }
    }

    // Rename via explicit DFS over the dominator tree.
    let mut pred_pairs: Vec<(VReg, VReg)> = Vec::new();
    let mut stacks: Vec<Vec<VReg>> = vec![Vec::new(); nv];
    // Parameters are defined on entry.
    let mut new_params = Vec::new();
    for &p in &f.params {
        let np = new_val(&mut out.vreg_widths, &mut origin, p);
        stacks[p.0 as usize].push(np);
        new_params.push(np);
    }
    out.params = new_params;

    enum Step {
        Visit(BlockId),
        Pop(BlockId),
    }
    // Track pushes per block to undo them.
    let mut pushes_per_block: Vec<Vec<VReg>> = vec![Vec::new(); nb]; // original vars pushed
    let mut new_rets: Option<Vec<VReg>> =
        if f.kind == crate::function::FuncKind::Device { None } else { Some(Vec::new()) };

    let mut stack = vec![Step::Visit(BlockId(0))];
    while let Some(step) = stack.pop() {
        match step {
            Step::Visit(b) => {
                let bi = b.0 as usize;
                // φ destinations first.
                for phi in &mut phis[bi] {
                    let nv_ = new_val(&mut out.vreg_widths, &mut origin, phi.var);
                    phi.dst = nv_;
                    stacks[phi.var.0 as usize].push(nv_);
                    pushes_per_block[bi].push(phi.var);
                }
                // Body instructions.
                let mut err = None;
                for inst in &mut out.blocks[bi].insts {
                    // Predicated destination: record the reaching value so
                    // coalescing can pin old and new to one slot.
                    let pred_dst = if inst.pred.is_some() { inst.dst } else { None };
                    let reaching_for_pred =
                        pred_dst.map(|d| stacks[d.0 as usize].last().copied().ok_or(d));
                    inst.rewrite_regs(|r, is_def| {
                        if is_def {
                            r // handled after uses
                        } else {
                            match stacks[r.0 as usize].last() {
                                Some(&cur) => cur,
                                None => {
                                    err.get_or_insert(SsaError::UseBeforeDef { var: r, block: b });
                                    r
                                }
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    // Now rewrite defs with fresh values. Collect first to
                    // avoid borrowing issues.
                    let defs: Vec<VReg> = inst.defs().collect();
                    let mut fresh = std::collections::HashMap::new();
                    for d in defs {
                        let nd = new_val(&mut out.vreg_widths, &mut origin, d);
                        stacks[d.0 as usize].push(nd);
                        pushes_per_block[bi].push(d);
                        fresh.insert(d, nd);
                    }
                    inst.rewrite_regs(
                        |r, is_def| {
                            if is_def {
                                *fresh.get(&r).expect("fresh def")
                            } else {
                                r
                            }
                        },
                    );
                    if let Some(reaching) = reaching_for_pred {
                        match reaching {
                            Ok(prev) => {
                                let new_d = inst.dst.expect("predicated dst");
                                pred_pairs.push((prev, new_d));
                            }
                            Err(var) => {
                                return Err(SsaError::UseBeforeDef { var, block: b });
                            }
                        }
                    }
                }
                // Rets at a Ret block.
                if matches!(out.blocks[bi].term, crate::function::Terminator::Ret)
                    && f.kind == crate::function::FuncKind::Device
                {
                    let mut rr = Vec::new();
                    for &r in &f.rets {
                        match stacks[r.0 as usize].last() {
                            Some(&cur) => rr.push(cur),
                            None => {
                                return Err(SsaError::UseBeforeDef { var: r, block: b });
                            }
                        }
                    }
                    new_rets = Some(rr);
                }
                // Fill φ args in successors.
                for &s in &cfg.succs[bi] {
                    let si = s.0 as usize;
                    for phi in &mut phis[si] {
                        if let Some(&cur) = stacks[phi.var.0 as usize].last() {
                            phi.args.push((b, cur));
                        }
                        // If no def reaches this edge the variable is dead
                        // here (pruned φ guarantees liveness, so a missing
                        // def would be a use-before-def caught at the use).
                    }
                }
                stack.push(Step::Pop(b));
                for &c in children[bi].iter().rev() {
                    stack.push(Step::Visit(c));
                }
            }
            Step::Pop(b) => {
                for var in pushes_per_block[b.0 as usize].drain(..) {
                    stacks[var.0 as usize].pop();
                }
            }
        }
    }

    out.rets = new_rets.unwrap_or_default();
    Ok(SsaFunction { func: out, phis, origin, pred_pairs })
}

/// Map from SSA values to webs (the paper's variable sets `SS_i`).
#[derive(Debug, Clone)]
pub struct WebMap {
    /// Web id of each SSA value.
    pub web_of: Vec<u32>,
    /// Width of each web.
    pub widths: Vec<Width>,
}

impl WebMap {
    /// Number of webs.
    pub fn num_webs(&self) -> usize {
        self.widths.len()
    }
}

/// Coalesce φ-connected SSA values into webs (union-find).
pub fn coalesce_phis(ssa: &SsaFunction) -> WebMap {
    let n = ssa.func.num_vregs();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for phis in &ssa.phis {
        for phi in phis {
            let d = find(&mut parent, phi.dst.0);
            for &(_, a) in &phi.args {
                let ar = find(&mut parent, a.0);
                if ar != d {
                    parent[ar as usize] = d;
                }
            }
        }
    }
    // Predicated read-modify-write destinations share their old value's web.
    for &(old, new) in &ssa.pred_pairs {
        let a = find(&mut parent, old.0);
        let b = find(&mut parent, new.0);
        if a != b {
            parent[b as usize] = a;
        }
    }
    // Compact web ids.
    let mut web_of = vec![u32::MAX; n];
    let mut widths = Vec::new();
    for v in 0..n as u32 {
        let root = find(&mut parent, v);
        if web_of[root as usize] == u32::MAX {
            web_of[root as usize] = widths.len() as u32;
            widths.push(ssa.func.width(VReg(root)));
        }
        web_of[v as usize] = web_of[root as usize];
    }
    WebMap { web_of, widths }
}

/// Rewrite an SSA function so every value is replaced by its web
/// representative; φs become no-ops and are dropped. The result is a
/// plain (non-SSA) function semantically identical to the original input
/// of [`to_ssa`].
pub fn to_web_function(ssa: &SsaFunction, map: &WebMap) -> Function {
    let mut f = ssa.func.clone();
    f.vreg_widths = map.widths.clone();
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            inst.rewrite_regs(|r, _| VReg(map.web_of[r.0 as usize]));
        }
    }
    f.params = f.params.iter().map(|r| VReg(map.web_of[r.0 as usize])).collect();
    f.rets = f.rets.iter().map(|r| VReg(map.web_of[r.0 as usize])).collect();
    f
}

/// Full normalization: SSA → pruned φ → web coalescing → φ-free function
/// with maximally split live ranges.
///
/// # Errors
/// Propagates [`SsaError`] from construction.
pub fn normalize(f: &Function) -> Result<Function, SsaError> {
    let ssa = to_ssa(f)?;
    let map = coalesce_phis(&ssa);
    Ok(to_web_function(&ssa, &map))
}

impl Function {
    /// Internal helper used by SSA construction (clears nothing today,
    /// reserved for attached metadata).
    fn user_note_clear(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FuncKind, Terminator};
    use crate::inst::{Inst, Opcode, Operand};
    use crate::types::{MemSpace, PredReg};

    /// if (p) v = 1 else v = 2; st v
    fn diamond_assign() -> Function {
        let mut f = Function::new("k", FuncKind::Kernel);
        let v = f.new_vreg(Width::W32);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        f.block_mut(BlockId(0)).term =
            Terminator::Branch { pred: PredReg(0), neg: false, then_bb: t, else_bb: e };
        f.block_mut(t).insts = vec![Inst::new(Opcode::Mov, Some(v), vec![Operand::Imm(1)])];
        f.block_mut(t).term = Terminator::Jump(j);
        f.block_mut(e).insts = vec![Inst::new(Opcode::Mov, Some(v), vec![Operand::Imm(2)])];
        f.block_mut(e).term = Terminator::Jump(j);
        f.block_mut(j).insts = vec![Inst::new(
            Opcode::St { space: MemSpace::Global, width: Width::W32, offset: 0 },
            None,
            vec![Operand::Imm(0), v.into()],
        )];
        f.block_mut(j).term = Terminator::Exit;
        f
    }

    #[test]
    fn phi_inserted_at_join() {
        let f = diamond_assign();
        let ssa = to_ssa(&f).unwrap();
        assert_eq!(ssa.phis[3].len(), 1, "one φ at the join block");
        assert_eq!(ssa.phis[3][0].args.len(), 2);
        // The two Movs defined distinct SSA values.
        let defs: Vec<VReg> = ssa.func.blocks[1]
            .insts
            .iter()
            .chain(&ssa.func.blocks[2].insts)
            .filter_map(|i| i.dst)
            .collect();
        assert_ne!(defs[0], defs[1]);
    }

    #[test]
    fn coalesce_merges_phi_web() {
        let f = diamond_assign();
        let ssa = to_ssa(&f).unwrap();
        let map = coalesce_phis(&ssa);
        let phi = &ssa.phis[3][0];
        let d = map.web_of[phi.dst.0 as usize];
        for &(_, a) in &phi.args {
            assert_eq!(map.web_of[a.0 as usize], d);
        }
    }

    #[test]
    fn normalize_roundtrip_structure() {
        let f = diamond_assign();
        let nf = normalize(&f).unwrap();
        assert_eq!(nf.num_blocks(), f.num_blocks());
        assert_eq!(nf.block(BlockId(3)).insts.len(), 1);
        // The store's operand is the φ web.
        let st = &nf.block(BlockId(3)).insts[0];
        assert!(st.srcs[1].as_reg().is_some());
    }

    #[test]
    fn unrelated_reuses_split() {
        // v = 1; st v; v = 2; st v  → two webs after normalize.
        let mut f = Function::new("k", FuncKind::Kernel);
        let v = f.new_vreg(Width::W32);
        let st = |v: VReg, off: i32| {
            Inst::new(
                Opcode::St { space: MemSpace::Global, width: Width::W32, offset: off },
                None,
                vec![Operand::Imm(0), v.into()],
            )
        };
        f.block_mut(BlockId(0)).insts = vec![
            Inst::new(Opcode::Mov, Some(v), vec![Operand::Imm(1)]),
            st(v, 0),
            Inst::new(Opcode::Mov, Some(v), vec![Operand::Imm(2)]),
            st(v, 4),
        ];
        let nf = normalize(&f).unwrap();
        let d0 = nf.block(BlockId(0)).insts[0].dst.unwrap();
        let d1 = nf.block(BlockId(0)).insts[2].dst.unwrap();
        assert_ne!(d0, d1, "independent reuses become distinct webs");
    }

    #[test]
    fn use_before_def_detected() {
        let mut f = Function::new("k", FuncKind::Kernel);
        let v = f.new_vreg(Width::W32);
        f.block_mut(BlockId(0)).insts = vec![Inst::new(
            Opcode::St { space: MemSpace::Global, width: Width::W32, offset: 0 },
            None,
            vec![Operand::Imm(0), v.into()],
        )];
        assert!(matches!(to_ssa(&f), Err(SsaError::UseBeforeDef { .. })));
    }

    #[test]
    fn loop_variable_single_web() {
        // i = 0; loop: i = i + 1; p = i < 10; branch loop/exit; st i.
        let mut f = Function::new("k", FuncKind::Kernel);
        let i = f.new_vreg(Width::W32);
        let header = f.new_block();
        let exit = f.new_block();
        f.block_mut(BlockId(0)).insts =
            vec![Inst::new(Opcode::Mov, Some(i), vec![Operand::Imm(0)])];
        f.block_mut(BlockId(0)).term = Terminator::Jump(header);
        let mut cmp =
            Inst::new(Opcode::ISetp(crate::inst::Cmp::Lt), None, vec![i.into(), Operand::Imm(10)]);
        cmp.pdst = Some(PredReg(0));
        f.block_mut(header).insts =
            vec![Inst::new(Opcode::IAdd, Some(i), vec![i.into(), Operand::Imm(1)]), cmp];
        f.block_mut(header).term =
            Terminator::Branch { pred: PredReg(0), neg: false, then_bb: header, else_bb: exit };
        f.block_mut(exit).insts = vec![Inst::new(
            Opcode::St { space: MemSpace::Global, width: Width::W32, offset: 0 },
            None,
            vec![Operand::Imm(0), i.into()],
        )];
        f.block_mut(exit).term = Terminator::Exit;

        let nf = normalize(&f).unwrap();
        // The loop-carried variable is one web everywhere.
        let def_in_header = nf.block(header).insts[0].dst.unwrap();
        let use_in_exit = nf.block(exit).insts[0].srcs[1].as_reg().unwrap();
        assert_eq!(def_in_header, use_in_exit);
    }
}
