//! Instructions and operands of the kernel IR.

use crate::types::{FuncId, MemSpace, PredReg, SpecialReg, VReg, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Source operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// An immediate 32-bit constant (stored sign-extended).
    Imm(i64),
    /// A kernel launch parameter (constant-bank slot); free to read,
    /// consumes no register, like `c[0][..]` on real hardware.
    Param(u8),
    /// A hardware special register.
    Special(SpecialReg),
}

impl Operand {
    /// Returns the register if this operand is one.
    #[inline]
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Param(p) => write!(f, "c[{p}]"),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// Integer comparison predicates for [`Opcode::ISetp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    /// Evaluate the comparison on signed 32-bit values.
    #[inline]
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }

    /// Evaluate the comparison on f32 values (NaN compares false except `Ne`).
    #[inline]
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "eq",
            Cmp::Ne => "ne",
            Cmp::Lt => "lt",
            Cmp::Le => "le",
            Cmp::Gt => "gt",
            Cmp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Operation performed by an instruction.
///
/// Operand conventions (sources in order):
/// * binary ALU ops take two sources; [`Opcode::IMad`]/[`Opcode::FFma`]
///   take three (`d = a*b + c`);
/// * `Ld` takes an address source (plus the immediate offset embedded in
///   the opcode); `St` takes address then value;
/// * [`Opcode::Sel`] takes (then, else) and a guard predicate in
///   [`Inst::sel_pred`];
/// * [`Opcode::Unpack`] extracts 32-bit word `lane` of a wide source;
///   [`Opcode::Pack`] produces a wide value equal to source 0 with word
///   `lane` replaced by source 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // ---- 32-bit integer ----
    IAdd,
    ISub,
    IMul,
    /// `d = a * b + c`.
    IMad,
    IMin,
    IMax,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    And,
    Or,
    Xor,
    Not,
    /// Integer compare writing a predicate register.
    ISetp(Cmp),
    // ---- 32-bit float (bit-stored) ----
    FAdd,
    FSub,
    FMul,
    /// Fused multiply-add `d = a*b + c`.
    FFma,
    FMin,
    FMax,
    FNeg,
    FAbs,
    /// Approximate reciprocal (used to build the division intrinsic,
    /// which on real GPUs is a *function call* — see the paper §3.2).
    FRcp,
    FSqrt,
    /// Float compare writing a predicate register.
    FSetp(Cmp),
    // ---- 64-bit float on W64 registers ----
    DAdd,
    DMul,
    DFma,
    // ---- conversions / data movement ----
    /// Signed i32 -> f32.
    I2F,
    /// f32 -> signed i32 (truncating).
    F2I,
    /// Register/immediate move of any width.
    Mov,
    /// Select between two sources by predicate (`Inst::sel_pred`).
    Sel,
    /// Extract 32-bit word `lane` from a wide source.
    Unpack {
        lane: u8,
    },
    /// Replace 32-bit word `lane` of wide source 0 with source 1.
    Pack {
        lane: u8,
    },
    // ---- memory ----
    /// Load `width` bytes from `space` at `src0 + offset`.
    Ld {
        space: MemSpace,
        width: Width,
        offset: i32,
    },
    /// Store `width` bytes to `space` at `src0 + offset` from `src1`.
    St {
        space: MemSpace,
        width: Width,
        offset: i32,
    },
    // ---- control / misc ----
    /// Call a device function; arguments and returns in [`Inst::call`].
    Call(FuncId),
    /// Block-wide barrier.
    Bar,
    /// No operation (placeholder; also used when eliding instructions).
    Nop,
}

impl Opcode {
    /// True for loads and stores.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Opcode::Ld { .. } | Opcode::St { .. })
    }

    /// Memory space for loads/stores.
    #[inline]
    pub fn mem_space(&self) -> Option<MemSpace> {
        match self {
            Opcode::Ld { space, .. } | Opcode::St { space, .. } => Some(*space),
            _ => None,
        }
    }
}

/// One IR instruction.
///
/// Every instruction may be guarded by a predicate (`pred`); a guarded
/// instruction executes only in lanes where the predicate (negated if
/// `pred_neg`) holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    pub op: Opcode,
    /// Destination register, if the operation produces a value.
    pub dst: Option<VReg>,
    /// Destination predicate for `ISetp`/`FSetp`.
    pub pdst: Option<PredReg>,
    /// Source operands.
    pub srcs: Vec<Operand>,
    /// Guard predicate: instruction executes where `pred` (xor `pred_neg`).
    pub pred: Option<PredReg>,
    pub pred_neg: bool,
    /// Selector predicate for [`Opcode::Sel`].
    pub sel_pred: Option<PredReg>,
    /// Call payload: argument operands and return registers.
    pub call: Option<CallInfo>,
}

/// Arguments and return registers of a [`Opcode::Call`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallInfo {
    pub args: Vec<Operand>,
    pub rets: Vec<VReg>,
}

impl Inst {
    /// A plain (unpredicated) instruction.
    pub fn new(op: Opcode, dst: Option<VReg>, srcs: Vec<Operand>) -> Self {
        Inst { op, dst, pdst: None, srcs, pred: None, pred_neg: false, sel_pred: None, call: None }
    }

    /// Registers read by this instruction (sources, call args). A
    /// *predicated* destination is also a use: when the guard is false
    /// the old value flows through, so the destination is live into the
    /// instruction (read-modify-write semantics).
    pub fn uses(&self) -> impl Iterator<Item = VReg> + '_ {
        let rmw = if self.pred.is_some() { self.dst } else { None };
        self.srcs
            .iter()
            .filter_map(Operand::as_reg)
            .chain(self.call.iter().flat_map(|c| c.args.iter().filter_map(Operand::as_reg)))
            .chain(rmw)
    }

    /// Registers written by this instruction (dst, call returns).
    pub fn defs(&self) -> impl Iterator<Item = VReg> + '_ {
        self.dst.into_iter().chain(self.call.iter().flat_map(|c| c.rets.iter().copied()))
    }

    /// Rewrite every register reference through `f` (uses and defs).
    pub fn rewrite_regs(&mut self, mut f: impl FnMut(VReg, bool) -> VReg) {
        // false = use, true = def
        for s in &mut self.srcs {
            if let Operand::Reg(r) = s {
                *r = f(*r, false);
            }
        }
        if let Some(c) = &mut self.call {
            for a in &mut c.args {
                if let Operand::Reg(r) = a {
                    *r = f(*r, false);
                }
            }
            for r in &mut c.rets {
                *r = f(*r, true);
            }
        }
        if let Some(d) = &mut self.dst {
            *d = f(*d, true);
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "@{}{} ", if self.pred_neg { "!" } else { "" }, p)?;
        }
        match &self.op {
            Opcode::Call(id) => {
                let c = self.call.as_ref();
                write!(f, "call {id}(")?;
                if let Some(c) = c {
                    for (i, a) in c.args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ") -> (")?;
                    for (i, r) in c.rets.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{r}")?;
                    }
                }
                write!(f, ")")
            }
            op => {
                if let Some(d) = self.dst {
                    write!(f, "{d} = ")?;
                }
                if let Some(p) = self.pdst {
                    write!(f, "{p} = ")?;
                }
                write!(f, "{op:?}")?;
                for (i, s) in self.srcs.iter().enumerate() {
                    write!(f, "{}{s}", if i == 0 { " " } else { ", " })?;
                }
                if let Some(sp) = self.sel_pred {
                    write!(f, " ?{sp}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let i =
            Inst::new(Opcode::IAdd, Some(VReg(2)), vec![Operand::Reg(VReg(0)), Operand::Imm(4)]);
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![VReg(0)]);
        assert_eq!(i.defs().collect::<Vec<_>>(), vec![VReg(2)]);
    }

    #[test]
    fn call_uses_and_defs() {
        let mut i = Inst::new(Opcode::Call(FuncId(1)), None, vec![]);
        i.call = Some(CallInfo {
            args: vec![Operand::Reg(VReg(5)), Operand::Imm(1)],
            rets: vec![VReg(6)],
        });
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![VReg(5)]);
        assert_eq!(i.defs().collect::<Vec<_>>(), vec![VReg(6)]);
    }

    #[test]
    fn rewrite_regs_touches_all() {
        let mut i = Inst::new(
            Opcode::IMad,
            Some(VReg(3)),
            vec![Operand::Reg(VReg(0)), Operand::Reg(VReg(1)), Operand::Reg(VReg(2))],
        );
        i.rewrite_regs(|r, _| VReg(r.0 + 10));
        assert_eq!(i.dst, Some(VReg(13)));
        assert_eq!(
            i.srcs,
            vec![Operand::Reg(VReg(10)), Operand::Reg(VReg(11)), Operand::Reg(VReg(12))]
        );
    }

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Lt.eval_i32(-1, 0));
        assert!(!Cmp::Lt.eval_f32(f32::NAN, 0.0));
        assert!(Cmp::Ne.eval_f32(f32::NAN, 0.0));
        assert!(Cmp::Ge.eval_i32(5, 5));
    }

    #[test]
    fn display_smoke() {
        let i =
            Inst::new(Opcode::IAdd, Some(VReg(2)), vec![Operand::Reg(VReg(0)), Operand::Imm(4)]);
        let s = i.to_string();
        assert!(s.contains("v2 = IAdd v0, 4"), "{s}");
    }
}
