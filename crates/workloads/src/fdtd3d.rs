//! `FDTD3d` (CUDA SDK, numerical analysis): finite-difference
//! time-domain 3-D stencil with the classic register z-queue.
//!
//! Table 2: 48 registers, no calls, shared memory. Each thread sweeps a
//! column in z; the radius-4 stencil keeps a queue of plane values in
//! registers while the x/y neighbors come from a shared-memory tile —
//! the canonical high-register, bandwidth-heavy GPU kernel.

use crate::common::{combine, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

const PLANE: u32 = 224 * 256; // threads per z-plane
const DEPTH: i64 = 8; // z extent swept by each thread
const BLOCK: u32 = 256;

/// Build the workload.
pub fn build() -> Workload {
    // Params: 0 = input volume, 1 = output volume.
    let mut b = FunctionBuilder::kernel("fdtd3d_stencil");
    let g = gid(&mut b);
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let x0 = ld_elem(&mut b, 0, g, 0);
    // Stencil coefficients + z-queue: the 48-register footprint.
    let coeffs = standing_values(&mut b, x0, 36);
    let sink = b.mov_f32(f32::MAX);
    let sa = b.imul(tid, Operand::Imm(4));
    let mut acc = b.mov_f32(0.0);
    for z in 0..DEPTH {
        // Current plane cell.
        let cur = ld_elem(&mut b, 0, g, (z * i64::from(PLANE)) as i32);
        // Tile-stage and read the x-neighbors.
        b.st(MemSpace::Shared, Width::W32, sa, cur, 0);
        b.bar();
        let e_idx = {
            let t = b.iadd(tid, Operand::Imm(1));
            b.imin(t, Operand::Imm(i64::from(BLOCK - 1)))
        };
        let ea = b.imul(e_idx, Operand::Imm(4));
        let east = b.ld(MemSpace::Shared, Width::W32, ea, 0);
        let w_idx = {
            let t = b.isub(tid, Operand::Imm(1));
            b.imax(t, Operand::Imm(0))
        };
        let wa = b.imul(w_idx, Operand::Imm(4));
        let west = b.ld(MemSpace::Shared, Width::W32, wa, 0);
        // Apply a tap of the coefficient queue.
        let c = coeffs[(z as usize) % coeffs.len()];
        let lap = {
            let s = b.fadd(east, west);
            b.fsub(s, cur)
        };
        acc = b.ffma(c, lap, acc);
        // Write-back the updated plane cell.
        let upd = b.ffma(lap, Operand::Imm(f32::to_bits(0.125) as i64), cur);
        let oidx = b.iadd(g, Operand::Imm(z * i64::from(PLANE)));
        st_elem(&mut b, 1, oidx, upd);
        b.bar();
    }
    let csum = combine(&mut b, &coeffs);
    let fin = b.fadd(acc, csum);
    let fin2 = b.fmin(fin, sink);
    st_elem(&mut b, 1, g, fin2);
    // Keep the store from racing with the loop's writes: last write wins
    // deterministically because each thread owns its column cells.
    let _ = fin2;
    b.exit();
    let mut module = Module::new(b.finish());
    module.user_smem_bytes = 4 * BLOCK;

    let vol_elems = (i64::from(PLANE) * (DEPTH + 2)) as usize;
    let volume = crate::common::f32_buffer(0xfd7d, vol_elems);
    let i_base = 0u32;
    let o_base = volume.len() as u32;
    let mut init = volume;
    init.extend(zeros(4 * vol_elems));

    Workload {
        name: "FDTD3d",
        domain: "Numer. analysis",
        module,
        grid: PLANE / BLOCK,
        block: BLOCK,
        params: vec![i_base, o_base],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 48, func: 0, smem: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 0);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 48).unsigned_abs() <= 5, "max-live {ml}");
        assert!(w.module.user_smem_bytes > 0);
    }
}
