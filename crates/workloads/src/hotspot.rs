//! `hotspot` (Rodinia, temperature modeling): iterative thermal stencil
//! on a shared-memory tile.
//!
//! Table 2: 37 registers, 6 calls, shared memory. The kernel stages a
//! tile, then runs several in-kernel time steps; each step's update
//! divides by the thermal capacitance — six static division calls.

use crate::common::{combine, fdiv, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

const CELLS: u32 = 336 * 192;
const BLOCK: u32 = 192;
const TIME_STEPS: usize = 6;

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("hotspot_kernel");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    // Params: 0 = temperature, 1 = power, 2 = output.
    let mut b = FunctionBuilder::kernel("hotspot_kernel");
    let g = gid(&mut b);
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let temp0 = ld_elem(&mut b, 0, g, 0);
    let power = ld_elem(&mut b, 1, g, 0);
    // Material coefficients: a large reconstruction working set that is
    // folded into a compact carry set before the time loop.
    let coeffs = standing_values(&mut b, power, 32);
    let csum = combine(&mut b, &coeffs);
    let carry = [
        b.fadd(csum, Operand::Imm(f32::to_bits(1.0) as i64)),
        b.fadd(csum, Operand::Imm(f32::to_bits(2.0) as i64)),
        b.fadd(csum, Operand::Imm(f32::to_bits(3.0) as i64)),
    ];
    let sa = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, sa, temp0, 0);
    b.bar();
    let mut temp = temp0;
    for step in 0..TIME_STEPS {
        // Neighbors from the tile (clamped).
        let e_idx = {
            let t = b.iadd(tid, Operand::Imm(1));
            b.imin(t, Operand::Imm(i64::from(BLOCK - 1)))
        };
        let w_idx = {
            let t = b.isub(tid, Operand::Imm(1));
            b.imax(t, Operand::Imm(0))
        };
        let ea = b.imul(e_idx, Operand::Imm(4));
        let east = b.ld(MemSpace::Shared, Width::W32, ea, 0);
        let wa = b.imul(w_idx, Operand::Imm(4));
        let west = b.ld(MemSpace::Shared, Width::W32, wa, 0);
        // Ambient sample from DRAM whose address depends on the
        // current temperature (adaptive grid lookup): a dependent miss
        // per time step that occupancy must hide.
        let amb = {
            let ti = b.f2i(temp);
            let tm = b.and(ti, Operand::Imm(i64::from(CELLS - 1)));
            ld_elem(&mut b, 1, tm, 0)
        };
        let lap = {
            let s = b.fadd(east, west);
            let two_t = b.fadd(temp, temp);
            let l = b.fsub(s, two_t);
            b.ffma(amb, Operand::Imm(f32::to_bits(0.01) as i64), l)
        };
        let delta = b.ffma(lap, Operand::Imm(f32::to_bits(0.25) as i64), power);
        // Divide by capacitance — one intrinsic call per time step.
        let cap = b.fadd(carry[step % carry.len()], Operand::Imm(f32::to_bits(2.0) as i64));
        let dt = fdiv(&mut b, fdiv_id, delta, cap);
        temp = b.fadd(temp, dt);
        b.bar();
        b.st(MemSpace::Shared, Width::W32, sa, temp, 0);
        b.bar();
    }
    let out = b.ffma(carry[0], Operand::Imm(f32::to_bits(1e-6) as i64), temp);
    st_elem(&mut b, 2, g, out);
    b.exit();
    module.funcs[0] = b.finish();
    module.user_smem_bytes = 4 * BLOCK;

    let temp = crate::common::f32_buffer(0x407a, CELLS as usize);
    let power = crate::common::f32_buffer(0x407b, CELLS as usize);
    let t_base = 0u32;
    let p_base = temp.len() as u32;
    let o_base = p_base + power.len() as u32;
    let mut init = temp;
    init.extend(power);
    init.extend(zeros((4 * CELLS) as usize));

    Workload {
        name: "hotspot",
        domain: "Temp. modeling",
        module,
        grid: CELLS / BLOCK,
        block: BLOCK,
        params: vec![t_base, p_base, o_base],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 37, func: 6, smem: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 6);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 37).unsigned_abs() <= 4, "max-live {ml}");
        assert!(w.module.user_smem_bytes > 0);
    }
}
