//! `srad` (Rodinia, imaging): speckle-reducing anisotropic diffusion.
//!
//! Table 2: 20 registers, 7 calls, shared memory. Each thread updates
//! one pixel from its N/S/E/W neighbors staged in a shared-memory tile;
//! the diffusion coefficient uses several divisions (intrinsic calls).
//! Figure 10: performance is flat from 50% occupancy upward — reducing
//! occupancy by half costs nothing, which is what Orion exploits for
//! the paper's headline 62.5% register saving.

use crate::common::{fdiv, gid, ld_elem, st_elem, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

const COLS: u32 = 192;
const ROWS: u32 = 672;
const BLOCK: u32 = 192;

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("srad_kernel");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    let mut b = FunctionBuilder::kernel("srad_kernel");
    let g = gid(&mut b);
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    // Stage the pixel into the tile.
    let x = ld_elem(&mut b, 0, g, 0);
    // Window statistics kept live through the update (Table 2 pressure).
    let stats = crate::common::standing_values(&mut b, x, 9);
    let saddr = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, saddr, x, 0);
    b.bar();
    // Neighbors: E/W from the tile (clamped inside the block), N/S from
    // global memory (row stride).
    let east_idx = {
        let t1 = b.iadd(tid, Operand::Imm(1));
        b.imin(t1, Operand::Imm(i64::from(BLOCK - 1)))
    };
    let west_idx = {
        let t1 = b.isub(tid, Operand::Imm(1));
        b.imax(t1, Operand::Imm(0))
    };
    let ea = b.imul(east_idx, Operand::Imm(4));
    let east = b.ld(MemSpace::Shared, Width::W32, ea, 0);
    let wa = b.imul(west_idx, Operand::Imm(4));
    let west = b.ld(MemSpace::Shared, Width::W32, wa, 0);
    let north = ld_elem(&mut b, 1, g, 0);
    let south = ld_elem(&mut b, 2, g, 0);
    // Directional derivatives.
    let dn = b.fsub(north, x);
    let ds = b.fsub(south, x);
    let de = b.fsub(east, x);
    let dw = b.fsub(west, x);
    // q0sqr-style statistics with divisions (7 static calls total).
    let sum = {
        let a = b.fadd(dn, ds);
        let c = b.fadd(de, dw);
        b.fadd(a, c)
    };
    let sum2 = {
        let a = b.ffma(dn, dn, Operand::Imm(0));
        let c = b.ffma(ds, ds, a);
        let d = b.ffma(de, de, c);
        b.ffma(dw, dw, d)
    };
    let mean = fdiv(&mut b, fdiv_id, sum, x);
    let var = fdiv(&mut b, fdiv_id, sum2, x);
    let m2 = b.ffma(mean, mean, Operand::Imm(f32::to_bits(1.0) as i64));
    let q = fdiv(&mut b, fdiv_id, var, m2);
    // Diffusion coefficient c = 1 / (1 + q) per direction pair.
    let one = b.mov_f32(1.0);
    let qp1 = b.fadd(q, one);
    let cn = fdiv(&mut b, fdiv_id, one, qp1);
    let t_s = b.ffma(q, Operand::Imm(f32::to_bits(0.5) as i64), one);
    let cs = fdiv(&mut b, fdiv_id, one, t_s);
    let t_e = b.ffma(q, Operand::Imm(f32::to_bits(0.25) as i64), one);
    let ce = fdiv(&mut b, fdiv_id, one, t_e);
    let t_w = b.ffma(q, Operand::Imm(f32::to_bits(0.125) as i64), one);
    let cw = fdiv(&mut b, fdiv_id, one, t_w);
    // Update: x + 0.25 * (cn*dn + cs*ds + ce*de + cw*dw)
    let mut d = b.fmul(cn, dn);
    d = b.ffma(cs, ds, d);
    d = b.ffma(ce, de, d);
    d = b.ffma(cw, dw, d);
    let upd = b.ffma(d, Operand::Imm(f32::to_bits(0.25) as i64), x);
    let ssum = crate::common::combine(&mut b, &stats);
    let out = b.ffma(ssum, Operand::Imm(f32::to_bits(1e-6) as i64), upd);
    st_elem(&mut b, 3, g, out);
    b.exit();
    let mut f = b.finish();
    f.name = "srad_kernel".to_string();
    module.funcs[0] = f;
    module.user_smem_bytes = 4 * BLOCK;

    let n = (COLS * ROWS) as usize;
    let img = crate::common::f32_buffer(0x54ad, n);
    let north = crate::common::f32_buffer(0x54ae, n);
    let south = crate::common::f32_buffer(0x54af, n);
    let i_base = 0u32;
    let n_base = img.len() as u32;
    let s_base = n_base + north.len() as u32;
    let o_base = s_base + south.len() as u32;
    let mut init = img;
    init.extend(north);
    init.extend(south);
    init.extend(zeros(4 * n));

    Workload {
        name: "srad",
        domain: "Imaging app",
        module,
        grid: (COLS * ROWS) / BLOCK,
        block: BLOCK,
        params: vec![i_base, n_base, s_base, o_base],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 20, func: 7, smem: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        let ml = kernel_max_live(&w.module).unwrap();
        assert!(
            (ml as i64 - i64::from(w.expected.reg)).unsigned_abs() <= 4,
            "max-live {ml} vs {}",
            w.expected.reg
        );
        assert_eq!(w.module.static_call_count(), 7);
        assert!(w.module.user_smem_bytes > 0);
    }
}
