//! `bfs` (Rodinia, graph traversal): one frontier-expansion step.
//!
//! Table 2: 16 registers, no calls, no shared memory. Each thread owns a
//! frontier node, loops over its (variable) degree — warp divergence —
//! and gathers neighbor costs through an irregular index buffer. The
//! application relaunches the kernel once per BFS level with *different
//! amounts of work* (the frontier grows and shrinks), which is exactly
//! why the paper reports the dynamic tuner struggles to compare
//! consecutive invocations (§4.2): we reproduce that with per-iteration
//! frontier sizes.
//!
//! Performance is best at the highest occupancy and flat above 50%
//! (Figure 15b): irregular gathers leave long latencies for warps to
//! hide and there is little cache locality to thrash.

use crate::common::{gid, guard, ld_elem, st_elem, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::{Cmp, Inst, Opcode, Operand};
use orion_kir::types::{PredReg, VReg};

const NODES: u32 = 1 << 13;
const MAX_DEGREE: u32 = 8;
const FRONTIER_CAP: u32 = 672 * 256;

/// Build the workload.
pub fn build() -> Workload {
    // Params: 0 = frontier ids, 1 = degrees, 2 = adjacency (node*MAX_DEGREE),
    // 3 = cost array, 4 = output, 5 = frontier size.
    let mut b = FunctionBuilder::kernel("bfs_kernel");
    let g = gid(&mut b);
    guard(&mut b, g, 5);
    let node = {
        let v = ld_elem(&mut b, 0, g, 0);
        b.and(v, Operand::Imm(i64::from(NODES - 1)))
    };
    let degree = ld_elem(&mut b, 1, node, 0);
    let abase = b.imul(node, Operand::Imm(i64::from(MAX_DEGREE)));
    // Path bookkeeping (visited masks, level counters) live across the
    // neighbor loop: Table 2's 16 registers.
    let degree_f = b.i2f(degree);
    let path = crate::common::standing_values(&mut b, degree_f, 9);
    let best: VReg = b.mov_f32(f32::MAX);
    // Degree-dependent loop: divergence across the warp.
    let i0 = b.mov_i32(0);
    let header = b.new_block();
    let body = b.new_block();
    let exit_bb = b.new_block();
    b.jump(header);
    b.switch_to(header);
    b.isetp(Cmp::Lt, i0, degree, PredReg(0));
    b.branch(PredReg(0), false, body, exit_bb);
    b.switch_to(body);
    let slot = b.iadd(abase, i0);
    let neighbor = ld_elem(&mut b, 2, slot, 0);
    let ncost = ld_elem(&mut b, 3, neighbor, 0); // irregular gather
                                                 // Edge-weight relaxation arithmetic per neighbor (keeps the kernel
                                                 // latency-bound rather than bandwidth-bound).
    let wgt = crate::common::fma_chain(&mut b, ncost, 6);
    b.push(Inst::new(Opcode::FMin, Some(best), vec![best.into(), wgt.into()]));
    b.push(Inst::new(Opcode::IAdd, Some(i0), vec![i0.into(), Operand::Imm(1)]));
    b.jump(header);
    b.switch_to(exit_bb);
    // Relax: out[node] = best + 1 (+ bookkeeping fold).
    let relaxed = b.fadd(best, Operand::Imm(f32::to_bits(1.0) as i64));
    let psum = crate::common::combine(&mut b, &path);
    let out = b.ffma(psum, Operand::Imm(f32::to_bits(1e-6) as i64), relaxed);
    st_elem(&mut b, 4, node, out);
    b.exit();
    let module = Module::new(b.finish());

    // Graph data.
    let frontier = crate::common::index_buffer(0xbf50, FRONTIER_CAP as usize, NODES);
    let degrees = crate::common::index_buffer(0xbf51, NODES as usize, MAX_DEGREE + 1);
    let adjacency = crate::common::index_buffer(0xbf52, (NODES * MAX_DEGREE) as usize, NODES);
    let costs = crate::common::f32_buffer(0xbf53, NODES as usize);
    let f_base = 0u32;
    let d_base = frontier.len() as u32;
    let a_base = d_base + degrees.len() as u32;
    let c_base = a_base + adjacency.len() as u32;
    let o_base = c_base + costs.len() as u32;
    let mut init = frontier;
    init.extend(degrees);
    init.extend(adjacency);
    init.extend(costs);
    init.extend(zeros((4 * NODES) as usize));

    // Frontier sizes per BFS level: grows then shrinks — different work
    // per invocation.
    let sizes = [24576u32, 73728, 147456, 172032, 147456, 73728, 49152, 24576];
    let grid = FRONTIER_CAP.div_ceil(256);
    let iter_params: Vec<Vec<u32>> =
        sizes.iter().map(|&s| vec![f_base, d_base, a_base, c_base, o_base, s]).collect();

    Workload {
        name: "bfs",
        domain: "Graph traversal",
        module,
        grid,
        block: 256,
        params: iter_params[3].clone(), // a representative (large) level
        init_global: init,
        iterations: sizes.len() as u32,
        can_tune: true,
        iter_params: Some(iter_params),
        expected: Table2Row { reg: 16, func: 0, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        let ml = kernel_max_live(&w.module).unwrap();
        assert!(
            (ml as i64 - i64::from(w.expected.reg)).unsigned_abs() <= 3,
            "max-live {ml} vs {}",
            w.expected.reg
        );
        assert!(w.iter_params.is_some());
    }

    #[test]
    fn divergent_loop_executes() {
        use orion_kir::interp::{Interpreter, LaunchConfig};
        let w = build();
        let mut g = w.init_global.clone();
        let mut params = w.params.clone();
        params[5] = 64;
        let stats = Interpreter::new(&w.module, &params)
            .run(LaunchConfig { grid: 1, block: 64 }, &mut g)
            .unwrap();
        assert!(stats.dyn_insts > 64 * 10);
    }
}
