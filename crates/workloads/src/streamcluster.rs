//! `streamcluster` (Rodinia, data mining): the distance/gain kernel of
//! streaming k-median clustering.
//!
//! Table 2: 18 registers, no calls, no shared memory. Each thread scans
//! the candidate centers, accumulating squared distances over the point
//! dimensions — a balanced memory/compute loop. Performance peaks
//! around 75% occupancy and is flat above 50% (Figure 14b): beyond the
//! latency-hiding point, extra warps only add cache pressure.

use crate::common::{gid, guard, ld_elem, st_elem, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_counted_loop, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::{Inst, Opcode, Operand};
use orion_kir::types::PredReg;

const DIMS: u32 = 8;
const CENTERS: u32 = 12;
const POINTS: u32 = 672 * 192;

/// Build the workload.
pub fn build() -> Workload {
    let mut b = FunctionBuilder::kernel("streamcluster_dist");
    let g = gid(&mut b);
    guard(&mut b, g, 3);
    let pbase = b.imul(g, Operand::Imm(i64::from(DIMS)));
    // Load the point's coordinates once (stay live across the scan).
    let coords: Vec<_> = (0..DIMS as i32).map(|d| ld_elem(&mut b, 0, pbase, d)).collect();
    // Gain bookkeeping kept live across the scan.
    let gains = crate::common::standing_values(&mut b, coords[0], 4);
    let best = b.mov_f32(f32::MAX);
    build_counted_loop(
        &mut b,
        Operand::Imm(0),
        Operand::Imm(i64::from(CENTERS)),
        1,
        PredReg(0),
        |b, c| {
            let cbase = b.imul(c, Operand::Imm(i64::from(DIMS)));
            let mut dist = b.mov_f32(0.0);
            for (d, &x) in coords.iter().enumerate() {
                let cv = ld_elem(b, 1, cbase, d as i32);
                let diff = b.fsub(x, cv);
                dist = b.ffma(diff, diff, dist);
            }
            b.push(Inst::new(Opcode::FMin, Some(best), vec![best.into(), dist.into()]));
        },
    );
    let gsum = crate::common::combine(&mut b, &gains);
    let out = b.ffma(gsum, Operand::Imm(f32::to_bits(1e-6) as i64), best);
    st_elem(&mut b, 2, g, out);
    b.exit();
    let module = Module::new(b.finish());

    let points = crate::common::f32_buffer(0x5c01, (POINTS * DIMS) as usize);
    let centers = crate::common::f32_buffer(0x5c02, (CENTERS * DIMS) as usize);
    let p_base = 0u32;
    let c_base = points.len() as u32;
    let o_base = c_base + centers.len() as u32;
    let mut init = points;
    init.extend(centers);
    init.extend(zeros((4 * POINTS) as usize));

    Workload {
        name: "streamcluster",
        domain: "Data mining",
        module,
        grid: POINTS.div_ceil(192),
        block: 192,
        params: vec![p_base, c_base, o_base, POINTS],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 18, func: 0, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        let ml = kernel_max_live(&w.module).unwrap();
        assert!(
            (ml as i64 - i64::from(w.expected.reg)).unsigned_abs() <= 3,
            "max-live {ml} vs {}",
            w.expected.reg
        );
        assert_eq!(w.module.static_call_count(), 0);
    }

    #[test]
    fn computes_min_distance() {
        use orion_kir::interp::{Interpreter, LaunchConfig};
        let w = build();
        let mut g = w.init_global.clone();
        // Shrink to one block for the functional check.
        let mut params = w.params.clone();
        params[3] = 192;
        Interpreter::new(&w.module, &params)
            .run(LaunchConfig { grid: 1, block: 192 }, &mut g)
            .unwrap();
        let off = w.params[2] as usize;
        let v = f32::from_bits(u32::from_le_bytes(g[off..off + 4].try_into().unwrap()));
        assert!(v.is_finite() && v >= 0.0, "{v}");
        assert!(v < f32::MAX);
    }
}
