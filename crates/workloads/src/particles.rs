//! `particles` (CUDA SDK, simulation): particle-interaction forces.
//!
//! Table 2: 52 registers, no calls, no shared memory. Each thread
//! integrates the force on one particle from a chunk of others (inlined
//! inverse-sqrt, no intrinsic calls). The application performs a
//! *single* launch per frame and its kernel cannot be split without
//! perturbing the collision ordering, so dynamic tuning is unavailable
//! — Orion uses the compiler's **static selection** (§4.1), which still
//! beats nvcc's occupancy.

use crate::common::{combine, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_counted_loop, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::PredReg;

const PARTICLES: u32 = 224 * 192;
const CHUNK: i64 = 20;

/// Build the workload.
pub fn build() -> Workload {
    // Params: 0 = positions x, 1 = positions y, 2 = output forces.
    let mut b = FunctionBuilder::kernel("particles_forces");
    let g = gid(&mut b);
    let px = ld_elem(&mut b, 0, g, 0);
    let py = ld_elem(&mut b, 1, g, 0);
    // Integrator state (velocities, collision bookkeeping): 52 regs.
    let state = standing_values(&mut b, px, 42);
    let sink = b.mov_f32(f32::MAX);
    let fx = b.mov_f32(0.0);
    build_counted_loop(&mut b, Operand::Imm(0), Operand::Imm(CHUNK), 1, PredReg(0), |b, j| {
        // Cell-list traversal: the next particle index comes from
        // the previous position (spatial hashing), a dependent
        // scattered gather.
        let hashed = {
            let pi = b.f2i(fx);
            let salted = b.imad(j, Operand::Imm(2654435761), pi);
            b.and(salted, Operand::Imm(i64::from(PARTICLES - 1)))
        };
        let qx = ld_elem(b, 0, hashed, 0);
        let qy = ld_elem(b, 1, hashed, 0);
        let dx = b.fsub(px, qx);
        let dy = b.fsub(py, qy);
        let r2 = {
            let t = b.fmul(dx, dx);
            b.ffma(dy, dy, t)
        };
        let soft = b.fadd(r2, Operand::Imm(f32::to_bits(0.01) as i64));
        // rsqrt(x)^3 inlined: no function call on either platform.
        let s = b.fsqrt(soft);
        let inv = b.frcp(s);
        let inv2 = b.fmul(inv, inv);
        let inv3 = b.fmul(inv2, inv);
        let contrib = b.fmul(dx, inv3);
        b.push(orion_kir::inst::Inst::new(
            orion_kir::inst::Opcode::FAdd,
            Some(fx),
            vec![fx.into(), contrib.into()],
        ));
    });
    let ssum = combine(&mut b, &state);
    let out = {
        let t = b.ffma(ssum, Operand::Imm(f32::to_bits(1e-6) as i64), fx);
        b.fmin(t, sink)
    };
    st_elem(&mut b, 2, g, out);
    b.exit();
    let module = Module::new(b.finish());

    let posx = crate::common::f32_buffer(0xaa01, PARTICLES as usize);
    let posy = crate::common::f32_buffer(0xaa02, PARTICLES as usize);
    let x_base = 0u32;
    let y_base = posx.len() as u32;
    let o_base = y_base + posy.len() as u32;
    let mut init = posx;
    init.extend(posy);
    init.extend(zeros((4 * PARTICLES) as usize));

    Workload {
        name: "particles",
        domain: "Simulation",
        module,
        grid: PARTICLES / 192,
        block: 192,
        params: vec![x_base, y_base, o_base],
        init_global: init,
        // A single launch per frame: no iterations to tune over.
        iterations: 1,
        can_tune: false,
        iter_params: None,
        expected: Table2Row { reg: 52, func: 0, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 0);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 52).unsigned_abs() <= 5, "max-live {ml}");
        assert!(!w.can_tune);
    }
}
