//! # orion-workloads — synthetic Rodinia / CUDA-SDK style benchmarks
//!
//! The Orion paper evaluates on twelve benchmarks from Rodinia and the
//! CUDA SDK (Table 2) plus `matrixMul` (Figure 2). Those programs are
//! CUDA sources for real GPUs; this crate rebuilds each as a kernel in
//! the `orion-kir` IR with the *measured characteristics the paper's
//! tuner actually consumes*:
//!
//! * the register demand of Table 2 ("Reg" = max-live words),
//! * the static call counts ("Func", including the float-division
//!   intrinsic, which is a real device-function call),
//! * user-declared shared memory ("Smem"),
//! * memory intensity, access pattern, divergence, and iteration
//!   structure that produce each benchmark's occupancy/performance
//!   shape (U-curve, plateau, skewed bell, flat).
//!
//! Each module exposes `build()` returning a ready-to-run [`Workload`].

pub mod common;

pub mod backprop;
pub mod bfs;
pub mod cfd;
pub mod dxtc;
pub mod fdtd3d;
pub mod gaussian;
pub mod hotspot;
pub mod image_denoising;
pub mod matrixmul;
pub mod particles;
pub mod recursive_gaussian;
pub mod srad;
pub mod streamcluster;

use orion_gpusim::exec::Launch;
use orion_kir::function::Module;
use serde::{Deserialize, Serialize};

/// The paper's Table 2 row for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Registers needed to avoid spilling (max-live words).
    pub reg: u32,
    /// Static function calls after inlining.
    pub func: usize,
    /// Whether the kernel declares shared memory.
    pub smem: bool,
}

/// A runnable benchmark: kernel module, launch shape, inputs, and the
/// application-loop structure the runtime tuner exploits.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub domain: &'static str,
    pub module: Module,
    pub grid: u32,
    pub block: u32,
    /// Kernel launch parameters (constant bank).
    pub params: Vec<u32>,
    /// Initial global memory contents.
    pub init_global: Vec<u8>,
    /// Application kernel-loop iterations.
    pub iterations: u32,
    /// False when the app cannot be tuned dynamically (single launch,
    /// kernel too small to split) — Orion falls back to static selection.
    pub can_tune: bool,
    /// Per-iteration parameter overrides (variable-work apps like bfs).
    pub iter_params: Option<Vec<Vec<u32>>>,
    /// Expected Table 2 characteristics (asserted by tests).
    pub expected: Table2Row,
}

impl Workload {
    /// The launch shape.
    pub fn launch(&self) -> Launch {
        Launch { grid: self.grid, block: self.block }
    }

    /// Parameters for iteration `i`.
    pub fn params_for(&self, iter: u32) -> &[u32] {
        match &self.iter_params {
            Some(per) => &per[iter as usize % per.len()],
            None => &self.params,
        }
    }
}

/// The paper's twelve Table 2 benchmarks, in Table 2 order.
pub fn table2_benchmarks() -> Vec<Workload> {
    vec![
        cfd::build(),
        dxtc::build(),
        fdtd3d::build(),
        hotspot::build(),
        image_denoising::build(),
        particles::build(),
        recursive_gaussian::build(),
        backprop::build(),
        bfs::build(),
        gaussian::build(),
        srad::build(),
        streamcluster::build(),
    ]
}

/// The seven high-pressure benchmarks tuned upward (Figures 5/11,
/// Table 3).
pub fn upward_benchmarks() -> Vec<Workload> {
    table2_benchmarks().into_iter().take(7).collect()
}

/// The five low-pressure benchmarks tuned downward (Figures 12/13).
pub fn downward_benchmarks() -> Vec<Workload> {
    table2_benchmarks().into_iter().skip(7).collect()
}

/// Every workload including `matrixMul` (Figure 2).
pub fn all_workloads() -> Vec<Workload> {
    let mut v = table2_benchmarks();
    v.push(matrixmul::build());
    v
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let names: Vec<&str> = table2_benchmarks().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "cfd",
                "dxtc",
                "FDTD3d",
                "hotspot",
                "imageDenoising",
                "particles",
                "recursiveGaussian",
                "backprop",
                "bfs",
                "gaussian",
                "srad",
                "streamcluster",
            ]
        );
        assert!(by_name("matrixMul").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_workloads_verify() {
        for w in all_workloads() {
            orion_kir::verify::verify(&w.module).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.grid > 0 && w.block > 0);
            assert!(!w.init_global.is_empty());
        }
    }
}
