//! `gaussian` (Rodinia, numerical analysis): one elimination step of
//! Gaussian elimination.
//!
//! Table 2: 11 registers, 2 calls, no shared memory. The kernel is a
//! thin memory-streaming update `m[i][j] -= m[i][k]/m[k][k] * m[k][j]`
//! with the two divisions compiled to intrinsic calls. It is almost pure
//! DRAM traffic with plenty of memory-level parallelism per thread, so
//! performance is *insensitive to occupancy* (Figure 14a) — the basis of
//! its large register/energy saving in Figures 12/13.

use crate::common::{fdiv, gid, guard, ld_elem, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;

const DIM: u32 = 128; // matrix dimension
const ROWS_PER_STEP: u32 = 672; // rows updated by one launch

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("gaussian_fan2");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    let mut b = FunctionBuilder::kernel("gaussian_fan2");
    let g = gid(&mut b);
    guard(&mut b, g, 4);
    // Each thread streams two float4 strips of the row (vectorized row
    // update, as the SDK kernel does): the kernel is pure DRAM
    // bandwidth, so it saturates the memory system at low occupancy and
    // is insensitive to further warps — Figure 14a.
    let zero = b.mov_i32(0);
    let pivot = ld_elem(&mut b, 3, zero, 0);
    let row = b.shr(g, Operand::Imm(7)); // 128 threads per row (DIM/1)
    let m_rk = ld_elem(&mut b, 2, row, 0);
    let ratio = fdiv(&mut b, fdiv_id, m_rk, pivot);
    let mut acc = b.mov_f32(0.0);
    for e in 0..2i64 {
        // Byte address of this thread's float4 in the matrix.
        let eidx = {
            let t = b.imad(g, Operand::Imm(2), Operand::Imm(e));
            b.and(t, Operand::Imm(i64::from(ROWS_PER_STEP * DIM / 4 - 1)))
        };
        let addr = b.imad(eidx, Operand::Imm(16), Operand::Param(0));
        let quad = b.ld(orion_kir::types::MemSpace::Global, orion_kir::types::Width::W128, addr, 0);
        // Update each lane of the quad: m -= ratio * pivot_row.
        let mut out = quad;
        for lane in 0..4u8 {
            let v = b.unpack(out, lane);
            let col = {
                let t = b.imad(eidx, Operand::Imm(4), Operand::Imm(i64::from(lane)));
                b.and(t, Operand::Imm(i64::from(DIM - 1)))
            };
            let m_kc = ld_elem(&mut b, 1, col, 0);
            let scaled = b.fmul(ratio, m_kc);
            let upd = b.fsub(v, scaled);
            out = b.pack(out, upd, lane);
            if lane == 0 {
                acc = b.fadd(acc, upd);
            }
        }
        b.st(orion_kir::types::MemSpace::Global, orion_kir::types::Width::W128, addr, out, 0);
    }
    // Final normalization division (matches the source's two call
    // sites); written into the thread's own first element.
    let norm = fdiv(&mut b, fdiv_id, acc, pivot);
    let own = {
        let t = b.imul(g, Operand::Imm(2));
        let masked = b.and(t, Operand::Imm(i64::from(ROWS_PER_STEP * DIM / 4 - 1)));
        b.imad(masked, Operand::Imm(16), Operand::Param(0))
    };
    b.st(orion_kir::types::MemSpace::Global, orion_kir::types::Width::W32, own, norm, 0);
    b.exit();
    module.funcs[0] = b.finish();

    let n_elems = (ROWS_PER_STEP * DIM) as usize;
    let matrix = crate::common::f32_buffer(0x6a55, n_elems);
    let pivot_row = crate::common::f32_buffer(0x6a56, DIM as usize);
    let mult_col = crate::common::f32_buffer(0x6a57, ROWS_PER_STEP as usize);
    let pivot = crate::common::f32_buffer(0x6a58, 1);
    let m_base = 0u32;
    let k_base = matrix.len() as u32;
    let c_base = k_base + pivot_row.len() as u32;
    let p_base = c_base + mult_col.len() as u32;
    let mut init = matrix;
    init.extend(pivot_row);
    init.extend(mult_col);
    init.extend(pivot);
    init.extend(zeros(4));

    let count = ROWS_PER_STEP * DIM;
    Workload {
        name: "gaussian",
        domain: "Numer. analysis",
        module,
        grid: count.div_ceil(192),
        block: 192,
        params: vec![m_base, k_base, c_base, p_base, count],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 11, func: 2, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        let ml = kernel_max_live(&w.module).unwrap();
        assert!(
            (ml as i64 - i64::from(w.expected.reg)).unsigned_abs() <= 3,
            "max-live {ml} vs {}",
            w.expected.reg
        );
        assert_eq!(w.module.static_call_count(), 2);
        assert_eq!(w.module.user_smem_bytes, 0);
    }
}
