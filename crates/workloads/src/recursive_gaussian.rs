//! `recursiveGaussian` (CUDA SDK, numerical analysis): Deriche-style
//! recursive IIR Gaussian filter over image columns.
//!
//! Table 2: 42 registers, 21 calls, no shared memory. Each thread owns a
//! column and streams it sequentially, carrying the recursive filter
//! state; the coefficient setup normalizes seven coefficient groups by
//! three denominators each — 21 division call sites.

use crate::common::{combine, fdiv, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_counted_loop, build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::{Inst, Opcode, Operand};
use orion_kir::types::PredReg;

const WIDTH: u32 = 224 * 192;
const HEIGHT: i64 = 10;

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("recursive_gaussian_rows");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    // Params: 0 = image (column-major: col + row*WIDTH), 1 = output.
    let mut b = FunctionBuilder::kernel("recursive_gaussian_rows");
    let col = gid(&mut b);
    let x0 = ld_elem(&mut b, 0, col, 0);
    // Filter state + coefficient pool: 42-register footprint.
    let pool = standing_values(&mut b, x0, 26);
    // Coefficient setup: 7 groups × 3 normalizations = 21 call sites.
    let mut coeffs = Vec::with_capacity(7);
    for gidx in 0..7 {
        let base = pool[gidx * 3 % pool.len()];
        let d1 = b.fadd(base, Operand::Imm(f32::to_bits(1.5) as i64));
        let c1 = fdiv(&mut b, fdiv_id, x0, d1);
        let d2 = b.fadd(base, Operand::Imm(f32::to_bits(2.5) as i64));
        let c2 = fdiv(&mut b, fdiv_id, c1, d2);
        let d3 = b.fadd(base, Operand::Imm(f32::to_bits(3.5) as i64));
        let c3 = fdiv(&mut b, fdiv_id, c2, d3);
        coeffs.push(c3);
    }
    // Forward recursive pass down the column.
    let yp = b.mov_f32(0.0); // y[n-1]
    let ypp = b.mov_f32(0.0); // y[n-2]
    build_counted_loop(&mut b, Operand::Imm(0), Operand::Imm(HEIGHT), 1, PredReg(0), |b, row| {
        let idx = b.imad(row, Operand::Imm(i64::from(WIDTH)), col);
        let x = ld_elem(b, 0, idx, 0);
        // y = c0*x + c1*yp - c2*ypp
        let t0 = b.fmul(coeffs[0], x);
        let t1 = b.ffma(coeffs[1], yp, t0);
        let neg = b.fneg(ypp);
        let y = b.ffma(coeffs[2], neg, t1);
        st_elem(b, 1, idx, y);
        // Shift the recursion state.
        b.push(Inst::new(Opcode::Mov, Some(ypp), vec![yp.into()]));
        b.push(Inst::new(Opcode::Mov, Some(yp), vec![y.into()]));
    });
    let psum = combine(&mut b, &pool);
    let csum = combine(&mut b, &coeffs);
    let fin = {
        let t = b.fadd(psum, csum);
        b.fadd(t, yp)
    };
    st_elem(&mut b, 1, col, fin);
    b.exit();
    module.funcs[0] = b.finish();

    let n = (i64::from(WIDTH) * HEIGHT) as usize;
    let img = crate::common::f32_buffer(0x6e55, n);
    let i_base = 0u32;
    let o_base = img.len() as u32;
    let mut init = img;
    init.extend(zeros(4 * n));

    Workload {
        name: "recursiveGaussian",
        domain: "Numer. analysis",
        module,
        grid: WIDTH / 192,
        block: 192,
        params: vec![i_base, o_base],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 42, func: 21, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 21);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 42).unsigned_abs() <= 5, "max-live {ml}");
        assert_eq!(w.module.user_smem_bytes, 0);
    }
}
