//! `matrixMul` (CUDA SDK): shared-memory tiled matrix multiplication —
//! the paper's Figure 2 example of the occupancy *plateau*.
//!
//! Moderate register pressure (each thread accumulates a strip of
//! outputs), heavy shared-memory reuse, and an arithmetic intensity high
//! enough that once ~50% occupancy covers the latency, adding more warps
//! changes nothing. The flat top is what lets Orion trade occupancy for
//! per-thread resources (§3, second principle).

use crate::common::{gid, ld_elem, st_elem, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::{Inst, Opcode, Operand};
use orion_kir::types::{MemSpace, SpecialReg, Width};

const TILE: i64 = 16;
const K_TILES: usize = 6;
const BLOCK: u32 = 256;
const ROWS: u32 = 224 * 256;

/// Build the workload.
pub fn build() -> Workload {
    // Params: 0 = A (row-major strips), 1 = B (tile stream), 2 = C out.
    let mut b = FunctionBuilder::kernel("matrixMul");
    let g = gid(&mut b);
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let sa = b.imul(tid, Operand::Imm(4));
    // Each thread accumulates a strip of 5 outputs — small enough that
    // even the full-occupancy register budget holds the whole working
    // set, which is what makes the curve plateau (Figure 2).
    let accs: Vec<_> = (0..5).map(|_| b.mov_f32(0.0)).collect();
    for kt in 0..K_TILES {
        // Cooperative tile load of B into shared memory.
        let bidx = {
            let t = b.mov_i32((kt as i64 * i64::from(BLOCK)) as i32);
            b.iadd(t, tid)
        };
        let bval = ld_elem(&mut b, 1, bidx, 0);
        b.st(MemSpace::Shared, Width::W32, sa, bval, 0);
        b.bar();
        // One coalesced streaming load of this thread's A element for the
        // tile (register blocking), then the inner product off the tile.
        let aidx = {
            let t = b.mov_i32((kt as i64 * i64::from(ROWS)) as i32);
            b.iadd(t, g)
        };
        let a = ld_elem(&mut b, 0, aidx, 0);
        for e in 0..TILE {
            // B element broadcast from the tile.
            let bs = {
                let idx = b.mov_i32(((e * 8) % i64::from(BLOCK)) as i32 * 4);
                b.ld(MemSpace::Shared, Width::W32, idx, 0)
            };
            let acc = accs[(e as usize) % accs.len()];
            b.push(Inst::new(Opcode::FFma, Some(acc), vec![a.into(), bs.into(), acc.into()]));
        }
        b.bar();
    }
    for (j, &acc) in accs.iter().enumerate() {
        if j == 0 {
            st_elem(&mut b, 2, g, acc);
        } else {
            // Strided output strip.
            let idx = b.iadd(g, Operand::Imm(j as i64 * i64::from(ROWS)));
            st_elem(&mut b, 2, idx, acc);
        }
    }
    b.exit();
    let mut module = Module::new(b.finish());
    module.user_smem_bytes = 4 * BLOCK;

    let a = crate::common::f32_buffer(0x3a01, (ROWS as i64 * K_TILES as i64) as usize);
    let bb = crate::common::f32_buffer(0x3a02, (i64::from(BLOCK) * K_TILES as i64) as usize);
    let a_base = 0u32;
    let b_base = a.len() as u32;
    let c_base = b_base + bb.len() as u32;
    let mut init = a;
    init.extend(bb);
    init.extend(zeros((4 * ROWS * 8) as usize)); // 5 strips + slack

    Workload {
        name: "matrixMul",
        domain: "Linear algebra",
        module,
        grid: ROWS / BLOCK,
        block: BLOCK,
        params: vec![a_base, b_base, c_base],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 26, func: 0, smem: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn characteristics() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 0);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((8..=26).contains(&ml), "max-live {ml}");
        assert!(w.module.user_smem_bytes > 0);
    }
}
