//! `cfd` (Rodinia, fluid dynamics): the unstructured-grid Euler flux
//! kernel.
//!
//! Table 2: 63 registers, **36 static calls** (the flux computation is
//! full of floating-point divisions that nvcc cannot inline), no shared
//! memory. Each thread owns a cell, gathers four neighbors through an
//! irregular connectivity array, and accumulates three flux components
//! per neighbor, each requiring three divisions — 4 × 9 = 36 call
//! sites, matching Table 2. The register footprint is dominated by the
//! cell's conserved-variable state kept live across the whole gather.

use crate::common::{combine, fdiv, gid, guard, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;

const CELLS: u32 = 224 * 192;
const NEIGHBORS: usize = 4;

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("cfd_compute_flux");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    // Params: 0 = cell state, 1 = connectivity, 2 = neighbor state,
    // 3 = output, 4 = cell count.
    let mut b = FunctionBuilder::kernel("cfd_compute_flux");
    let g = gid(&mut b);
    guard(&mut b, g, 4);
    let density = ld_elem(&mut b, 0, g, 0);
    // Dense phase: the conserved-variable reconstruction holds the
    // paper's 63-register working set, but it is folded into a single
    // accumulator *before* the flux gather, so only a small carry set
    // stays live across the division calls (real cfd behaves the same:
    // the reconstruction temporaries die before the flux loop).
    let state = standing_values(&mut b, density, 55);
    let recon = combine(&mut b, &state);
    let mut flux = b.mov_f32(0.0);
    // Neighbor walk: each gather depends on the previous one (the
    // connectivity is a linked traversal), so per-warp memory-level
    // parallelism is low and occupancy is what hides the latency.
    let mut cursor = g;
    for _n in 0..NEIGHBORS {
        let nb = {
            let raw = ld_elem(&mut b, 1, cursor, 0);
            b.and(raw, Operand::Imm(i64::from(CELLS - 1)))
        };
        cursor = nb;
        let nb_density = ld_elem(&mut b, 2, nb, 0);
        let nb_energy = ld_elem(&mut b, 2, nb, 1);
        // Three flux components; each normalizes by density (3 divisions).
        for c in 0..3 {
            let diff = b.fsub(nb_density, density);
            let p1 = fdiv(&mut b, fdiv_id, diff, density);
            let p2 = fdiv(&mut b, fdiv_id, nb_energy, nb_density);
            let m = b.fmul(p1, p2);
            let t = b.fadd(density, Operand::Imm(f32::to_bits(1.0 + c as f32) as i64));
            let p3 = fdiv(&mut b, fdiv_id, m, t);
            flux = b.fadd(flux, p3);
        }
    }
    let total = b.fadd(flux, recon);
    st_elem(&mut b, 3, g, total);
    b.exit();
    module.funcs[0] = b.finish();

    let cell = crate::common::f32_buffer(0xcfd0, CELLS as usize);
    let conn = crate::common::index_buffer(0xcfd1, CELLS as usize * NEIGHBORS, CELLS);
    let nbst = crate::common::f32_buffer(0xcfd2, CELLS as usize * 2);
    let c_base = 0u32;
    let k_base = cell.len() as u32;
    let n_base = k_base + conn.len() as u32;
    let o_base = n_base + nbst.len() as u32;
    let mut init = cell;
    init.extend(conn);
    init.extend(nbst);
    init.extend(zeros((4 * CELLS) as usize));

    Workload {
        name: "cfd",
        domain: "Fluid dynam.",
        module,
        grid: CELLS.div_ceil(192),
        block: 192,
        params: vec![c_base, k_base, n_base, o_base, CELLS],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 63, func: 36, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 36);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 63).unsigned_abs() <= 5, "max-live {ml} vs Table 2 63");
        assert_eq!(w.module.user_smem_bytes, 0);
    }
}
