//! Shared kernel-construction helpers and input generators.

use orion_kir::builder::FunctionBuilder;
use orion_kir::inst::{Cmp, Inst, Opcode, Operand};
use orion_kir::types::{FuncId, MemSpace, PredReg, SpecialReg, VReg, Width};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compute the global linear thread id (`ctaid * ntid + tid`).
pub fn gid(b: &mut FunctionBuilder) -> VReg {
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    b.imad(cta, nt, tid)
}

/// Emit an early-exit guard: threads with `gid >= Param(count_param)`
/// leave immediately. Returns with the builder positioned in the body.
pub fn guard(b: &mut FunctionBuilder, gid: VReg, count_param: u8) {
    b.isetp(Cmp::Ge, gid, Operand::Param(count_param), PredReg(6));
    let body = b.new_block();
    let out = b.new_block();
    b.branch(PredReg(6), false, out, body);
    b.switch_to(out);
    b.exit();
    b.switch_to(body);
}

/// Materialize `k` values that stay live together with `seed` (they are
/// all combined by the returned accumulator later). This is the main
/// register-pressure knob: max-live grows roughly with `k`.
pub fn standing_values(b: &mut FunctionBuilder, seed: VReg, k: usize) -> Vec<VReg> {
    (0..k)
        .map(|i| {
            let c = b.mov_f32(0.5 + i as f32 * 0.125);
            b.ffma(seed, c, Operand::Imm(f32::to_bits(1.0 + i as f32) as i64))
        })
        .collect()
}

/// Fold standing values into one result.
pub fn combine(b: &mut FunctionBuilder, vals: &[VReg]) -> VReg {
    let mut acc = b.mov_f32(0.0);
    for &v in vals {
        acc = b.fadd(acc, v);
    }
    acc
}

/// Re-touch every standing value inside a loop body so they stay live
/// across the whole loop (a cheap read: fmin into a sink).
pub fn touch_all(b: &mut FunctionBuilder, sink: VReg, vals: &[VReg]) {
    for &v in vals {
        b.push(Inst::new(Opcode::FMin, Some(sink), vec![sink.into(), v.into()]));
    }
}

/// Append `n` dependent FMAs on `x` (compute intensity knob). Returns
/// the chain result.
pub fn fma_chain(b: &mut FunctionBuilder, x: VReg, n: usize) -> VReg {
    let mut acc = x;
    for i in 0..n {
        let c = f32::to_bits(1.0 + (i % 7) as f32 * 0.03125) as i64;
        acc = b.ffma(acc, Operand::Imm(c), x);
    }
    acc
}

/// Call the float-division intrinsic `fdiv_id` once: `a / d`.
pub fn fdiv(b: &mut FunctionBuilder, fdiv_id: FuncId, a: VReg, d: VReg) -> VReg {
    b.call(fdiv_id, vec![a.into(), d.into()], &[Width::W32])[0]
}

/// Load a 32-bit word of `base_param` at element index `idx`.
pub fn ld_elem(b: &mut FunctionBuilder, base_param: u8, idx: VReg, offset: i32) -> VReg {
    let addr = b.imad(idx, Operand::Imm(4), Operand::Param(base_param));
    b.ld(MemSpace::Global, Width::W32, addr, offset * 4)
}

/// Store a 32-bit word to `base_param[idx]`.
pub fn st_elem(b: &mut FunctionBuilder, base_param: u8, idx: VReg, val: VReg) {
    let addr = b.imad(idx, Operand::Imm(4), Operand::Param(base_param));
    b.st(MemSpace::Global, Width::W32, addr, val, 0);
}

/// Deterministic f32 buffer in `[0.5, 1.5)` (safe for division).
pub fn f32_buffer(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .flat_map(|_| {
            let v: f32 = 0.5 + rng.gen::<f32>();
            v.to_bits().to_le_bytes()
        })
        .collect()
}

/// Deterministic u32 index buffer with values in `[0, range)`.
pub fn index_buffer(seed: u64, n: usize, range: u32) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).flat_map(|_| rng.gen_range(0..range).to_le_bytes()).collect()
}

/// Zero-filled output region.
pub fn zeros(n_bytes: usize) -> Vec<u8> {
    vec![0u8; n_bytes]
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;
    use orion_kir::function::Module;

    #[test]
    fn standing_values_drive_max_live() {
        for k in [4usize, 16, 32] {
            let mut b = FunctionBuilder::kernel("t");
            let g = gid(&mut b);
            let x = ld_elem(&mut b, 0, g, 0);
            let vals = standing_values(&mut b, x, k);
            let acc = combine(&mut b, &vals);
            st_elem(&mut b, 1, g, acc);
            let m = Module::new(b.finish());
            let ml = kernel_max_live(&m).unwrap();
            assert!((ml as i64 - k as i64).unsigned_abs() <= 4, "k={k} maxlive={ml}");
        }
    }

    #[test]
    fn buffers_are_deterministic() {
        assert_eq!(f32_buffer(7, 16), f32_buffer(7, 16));
        assert_ne!(f32_buffer(7, 16), f32_buffer(8, 16));
        let idx = index_buffer(3, 64, 10);
        for c in idx.chunks(4) {
            let v = u32::from_le_bytes(c.try_into().unwrap());
            assert!(v < 10);
        }
    }

    #[test]
    fn guard_produces_early_exit() {
        let mut b = FunctionBuilder::kernel("g");
        let g = gid(&mut b);
        guard(&mut b, g, 2);
        let x = ld_elem(&mut b, 0, g, 0);
        st_elem(&mut b, 1, g, x);
        b.exit();
        let m = Module::new(b.finish());
        orion_kir::verify::verify(&m).unwrap();
    }
}
