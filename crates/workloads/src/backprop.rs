//! `backprop` (Rodinia, machine learning): the forward-layer kernel.
//!
//! Paper characteristics (Table 2): 21 registers, no calls, no shared
//! memory. The kernel is tiny — fewer than 100 instructions, no loops —
//! which is exactly why the paper reports it *cannot* be tuned: the
//! launch overhead would swamp the kernel, so Orion defaults to the
//! original version (§4.2). We model one layer's weighted sum with a
//! fully unrolled 16-input dot product and a rational sigmoid.

use crate::common::{combine, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::FunctionBuilder;
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, Width};

const HIDDEN: u32 = 16;
const N: u32 = 336 * 256; // output neurons across the grid

/// Build the workload.
pub fn build() -> Workload {
    let mut b = FunctionBuilder::kernel("backprop_layerforward");
    let g = gid(&mut b);
    // Weighted sum over 16 inputs, fully unrolled: weights are per-gid
    // (streamed), inputs broadcast from a small table.
    let wbase = b.imul(g, Operand::Imm(i64::from(HIDDEN)));
    let x0 = ld_elem(&mut b, 0, wbase, 0);
    // A modest standing set keeps ~16 partial products live: the paper's
    // 21-register footprint.
    let partials = standing_values(&mut b, x0, 18);
    let mut acc = combine(&mut b, &partials);
    for i in 1..4 {
        let w = ld_elem(&mut b, 0, wbase, i);
        let idx = b.and(g, Operand::Imm(15));
        let inp = ld_elem(&mut b, 1, idx, i);
        let p = b.fmul(w, inp);
        acc = b.fadd(acc, p);
    }
    // Rational sigmoid approximation: s = a / (1 + |a|) (inline, no call
    // — backprop has Func = 0).
    let absa = b.fabs(acc);
    let denom = b.fadd(absa, Operand::Imm(f32::to_bits(1.0) as i64));
    let r = b.frcp(denom);
    let s = b.fmul(acc, r);
    st_elem(&mut b, 2, g, s);
    let a2 = b.imad(g, Operand::Imm(4), Operand::Param(3));
    b.st(MemSpace::Global, Width::W32, a2, acc, 0);
    let module = Module::new(b.finish());

    let weights = crate::common::f32_buffer(0xbacc, (N * HIDDEN) as usize);
    let inputs = crate::common::f32_buffer(0xbacd, 64);
    let w_base = 0u32;
    let in_base = weights.len() as u32;
    let out_base = in_base + inputs.len() as u32;
    let out2_base = out_base + 4 * N;
    let mut init = weights;
    init.extend(inputs);
    init.extend(zeros((4 * N) as usize));
    init.extend(zeros((4 * N) as usize));

    Workload {
        name: "backprop",
        domain: "Machine learning",
        module,
        grid: N / 256,
        block: 256,
        params: vec![w_base, in_base, out_base, out2_base],
        init_global: init,
        iterations: 6,
        // The kernel is too small to tune (paper §4.2): default to the
        // original version via the static path.
        can_tune: false,
        iter_params: None,
        expected: Table2Row { reg: 21, func: 0, smem: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        let ml = kernel_max_live(&w.module).unwrap();
        assert!(
            (ml as i64 - i64::from(w.expected.reg)).unsigned_abs() <= 3,
            "max-live {ml} vs Table 2 {}",
            w.expected.reg
        );
        assert_eq!(w.module.static_call_count(), w.expected.func);
        assert_eq!(w.module.user_smem_bytes > 0, w.expected.smem);
        // "less than 100 binary instructions" (§4.2).
        assert!(w.module.kernel().num_insts() < 100);
    }
}
