//! `dxtc` (CUDA SDK, image processing): DXT1 block compression.
//!
//! Table 2: 49 registers, 11 calls, shared memory. Each thread
//! compresses a 4×4 texel block: all sixteen texels are loaded up front
//! and stay live through the endpoint-refinement iterations (the
//! register footprint), the candidate palette is staged in shared
//! memory, and the per-axis normalizations contribute eleven division
//! call sites.

use crate::common::{combine, fdiv, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

const BLOCKS4X4: u32 = 224 * 192;
const BLOCK: u32 = 192;

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("dxtc_compress");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    // Params: 0 = texels, 1 = output codes.
    let mut b = FunctionBuilder::kernel("dxtc_compress");
    let g = gid(&mut b);
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    // Texels are fetched through a swizzled (Morton-order) index so
    // each fetch depends on the previous one's address computation.
    let mut cursor = b.imul(g, Operand::Imm(16));
    let mask = i64::from(BLOCKS4X4 * 16 - 1);
    let texels: Vec<_> = (0..16)
        .map(|_| {
            let t = ld_elem(&mut b, 0, cursor, 0);
            let p = b.f2i(t);
            let pm = b.and(p, Operand::Imm(511));
            let nxt = b.iadd(cursor, pm);
            cursor = b.and(nxt, Operand::Imm(mask));
            t
        })
        .collect();
    // ...plus covariance/endpoint state, folded before refinement.
    let state = standing_values(&mut b, texels[0], 30);
    let st_sum = combine(&mut b, &state);
    // Stage the block min in shared memory (palette scratch).
    let mut bmin = texels[0];
    for &t in &texels[1..] {
        bmin = b.fmin(bmin, t);
    }
    let sa = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, sa, bmin, 0);
    b.bar();
    let staged = b.ld(MemSpace::Shared, Width::W32, sa, 0);
    // Fold the upper texels into one statistic before refinement; only
    // the lower half stays live across the division calls.
    let upper = combine(&mut b, &texels[8..]);
    // Endpoint refinement: 11 normalizing divisions across the axes.
    let mut err = b.fmul(upper, Operand::Imm(f32::to_bits(1e-6) as i64));
    let mut axis = staged;
    for i in 0..11 {
        let t = texels[i % 8];
        let diff = b.fsub(t, axis);
        let len2 = b.ffma(diff, diff, Operand::Imm(f32::to_bits(0.5) as i64));
        let unit = fdiv(&mut b, fdiv_id, diff, len2);
        axis = b.ffma(unit, Operand::Imm(f32::to_bits(0.75) as i64), axis);
        err = b.ffma(unit, unit, err);
    }
    // Emit the compressed code: fold everything.
    let tex_sum = combine(&mut b, &texels[..8]);
    let code = {
        let a = b.fadd(tex_sum, st_sum);
        let c = b.fadd(a, err);
        b.fadd(c, axis)
    };
    st_elem(&mut b, 1, g, code);
    b.exit();
    module.funcs[0] = b.finish();
    module.user_smem_bytes = 4 * BLOCK;

    let texels = crate::common::f32_buffer(0xd97c, (BLOCKS4X4 * 16) as usize);
    let t_base = 0u32;
    let o_base = texels.len() as u32;
    let mut init = texels;
    init.extend(zeros((4 * BLOCKS4X4) as usize));

    Workload {
        name: "dxtc",
        domain: "Image proc.",
        module,
        grid: BLOCKS4X4 / BLOCK,
        block: BLOCK,
        params: vec![t_base, o_base],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 49, func: 11, smem: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 11);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 49).unsigned_abs() <= 5, "max-live {ml}");
        assert!(w.module.user_smem_bytes > 0);
    }
}
