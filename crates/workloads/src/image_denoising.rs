//! `imageDenoising` (CUDA SDK, image processing): NLM-style windowed
//! filter — the paper's motivating example (Figure 1).
//!
//! Table 2: 63 registers, 2 calls, shared memory. Each thread filters
//! one pixel by scanning a 5×5 window with per-tap weights; the large
//! accumulated weight state keeps ~60 values live. Its occupancy curve
//! on GTX680 is the classic U: at 12.5% occupancy the memory latency of
//! window taps is exposed (≈3× slower), at 100% the register budget
//! (32/thread) forces spills for a 63-register kernel (≈1.5× slower);
//! the sweet spot is 50%.

use crate::common::{combine, fdiv, gid, ld_elem, st_elem, standing_values, zeros};
use crate::{Table2Row, Workload};
use orion_kir::builder::{build_fdiv_device, FunctionBuilder};
use orion_kir::function::Module;
use orion_kir::inst::Operand;
use orion_kir::types::{MemSpace, SpecialReg, Width};

const W: u32 = 448;
const H: u32 = 96;
const BLOCK: u32 = 192;
const TAPS: usize = 14;

/// Build the workload.
pub fn build() -> Workload {
    let kb = FunctionBuilder::kernel("image_denoising_nlm");
    let mut module = Module::new(kb.finish());
    let fdiv_id = module.add_func(build_fdiv_device());

    // Params: 0 = input image, 1 = output, 2 = pixel count.
    let mut b = FunctionBuilder::kernel("image_denoising_nlm");
    let g = gid(&mut b);
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let x = ld_elem(&mut b, 0, g, 0);
    // Stage the row segment in the tile (Smem = yes in Table 2).
    let sa = b.imul(tid, Operand::Imm(4));
    b.st(MemSpace::Shared, Width::W32, sa, x, 0);
    b.bar();
    // Per-tap weight state: the 63-register footprint.
    let weights = standing_values(&mut b, x, 56);
    let mut num = b.mov_f32(0.0);
    let mut den = b.mov_f32(0.0);
    let sink = b.mov_f32(f32::MAX);
    // Data-adaptive taps: the next tap's position depends on the
    // previous tap's value (edge-following filter), so the taps form a
    // dependent chain of scattered loads.
    let mut cursor = g;
    for t in 0..TAPS {
        let tap = ld_elem(&mut b, 0, cursor, 0);
        let perturb = {
            let i = b.f2i(tap);
            b.and(i, Operand::Imm(1023))
        };
        cursor = {
            let step = b.iadd(cursor, perturb);
            let moved = b.iadd(step, Operand::Imm(i64::from(W) + 1));
            b.and(moved, Operand::Imm(i64::from(W * H - 1)))
        };
        let diff = b.fsub(tap, x);
        let d2 = b.fmul(diff, diff);
        // Rational weight ≈ 1/(1+d²) without a call (calls are the
        // two final normalizations).
        let wdenom = b.fadd(d2, Operand::Imm(f32::to_bits(1.0) as i64));
        let wgt = b.frcp(wdenom);
        num = b.ffma(wgt, tap, num);
        den = b.fadd(den, wgt);
        let _ = t;
    }
    // Fold the weight state before the calls (it dies here), then the
    // kernel's two intrinsic divisions.
    let wsum = combine(&mut b, &weights);
    let filtered = fdiv(&mut b, fdiv_id, num, den);
    let t = b.fadd(wsum, Operand::Imm(f32::to_bits(64.0) as i64));
    let gain = fdiv(&mut b, fdiv_id, filtered, t);
    let out = b.ffma(gain, Operand::Imm(f32::to_bits(0.5) as i64), filtered);
    let sunk = b.fmin(out, sink);
    st_elem(&mut b, 1, g, sunk);
    b.exit();
    module.funcs[0] = b.finish();
    module.user_smem_bytes = 4 * BLOCK;

    let img = crate::common::f32_buffer(0x1d01, (W * H) as usize);
    let i_base = 0u32;
    let o_base = img.len() as u32;
    let mut init = img;
    init.extend(zeros((4 * W * H) as usize));

    Workload {
        name: "imageDenoising",
        domain: "Image proc.",
        module,
        grid: (W * H) / BLOCK,
        block: BLOCK,
        params: vec![i_base, o_base, W * H],
        init_global: init,
        iterations: 8,
        can_tune: true,
        iter_params: None,
        expected: Table2Row { reg: 63, func: 2, smem: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_alloc::realize::kernel_max_live;

    #[test]
    fn matches_table2() {
        let w = build();
        orion_kir::verify::verify(&w.module).unwrap();
        assert_eq!(w.module.static_call_count(), 2);
        let ml = kernel_max_live(&w.module).unwrap();
        assert!((ml as i64 - 63).unsigned_abs() <= 5, "max-live {ml}");
        assert!(w.module.user_smem_bytes > 0);
    }
}
