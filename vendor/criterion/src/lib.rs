//! Offline stand-in for `criterion`: wall-clock benchmarking with
//! auto-calibrated iteration counts and median-of-samples reporting.
//! Prints `name ... time: <median> ns/iter (min <min>, max <max>)` lines
//! instead of criterion's statistical analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

pub struct Bencher {
    /// Iterations per sample, fixed by calibration before sampling.
    iters: u64,
    /// ns/iter for the current sample (written by `iter`).
    sample_ns: f64,
    calibrating: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // Measure one call to size the per-sample iteration count.
            let start = Instant::now();
            black_box(f());
            let one = start.elapsed();
            // Aim for ~5 ms per sample, clamped to [1, 10_000] iters.
            let target = Duration::from_millis(5).as_nanos() as u64;
            let per = one.as_nanos().max(1) as u64;
            self.iters = (target / per).clamp(1, 10_000);
            self.sample_ns = one.as_nanos() as f64;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.sample_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { iters: 1, sample_ns: 0.0, calibrating: true };
    f(&mut b);
    b.calibrating = false;
    let mut results = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        results.push(b.sample_ns);
    }
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = results[results.len() / 2];
    let min = results.first().copied().unwrap_or(0.0);
    let max = results.last().copied().unwrap_or(0.0);
    println!("{name:<48} time: {median:>12.1} ns/iter (min {min:.1}, max {max:.1})");
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }
}
