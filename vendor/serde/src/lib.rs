//! Offline stand-in for `serde`: a self-describing `Value` tree plus
//! `Serialize`/`Deserialize` traits that convert to and from it.
//!
//! The real serde is a zero-cost visitor framework; this stand-in trades
//! that for a tiny, dependency-free data model that is more than fast
//! enough for report/artifact serialization. See `vendor/README.md` for
//! the exact supported surface and how to swap the upstream crate back.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like self-describing value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// A shared `Null` for "absent field" lookups.
pub static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// serde_json compatibility alias for [`Value::as_seq`].
    pub fn as_array(&self) -> Option<&[Value]> {
        self.as_seq()
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Map-field or sequence-index lookup (`None` on kind mismatch).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| map_get(m, key))
    }

    pub fn get_idx(&self, idx: usize) -> Option<&Value> {
        self.as_seq().and_then(|s| s.get(idx))
    }

    /// Build a `Value::Map` from `(key, value)` pairs.
    pub fn object<K: Into<String>>(fields: Vec<(K, Value)>) -> Value {
        Value::Map(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_idx(idx).unwrap_or(&NULL)
    }
}

/// Ordered-map lookup helper (also used by derived code).
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Externally-tagged enum payload helper (used by derived code).
pub fn variant(name: &str, payload: Value) -> Value {
    Value::Map(vec![(name.to_string(), payload)])
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the self-describing [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::$variant(*self as $cast)
                }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let wide = match v {
                        Value::I64(x) => *x as i128,
                        Value::U64(x) => *x as i128,
                        Value::F64(x) if x.fract() == 0.0 => *x as i128,
                        _ => return Err(DeError::custom(concat!(
                            "expected integer for ", stringify!($t)))),
                    };
                    <$t>::try_from(wide).map_err(|_| {
                        DeError::custom(concat!("out of range for ", stringify!($t)))
                    })
                }
            }
        )*
    };
}

ser_int! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| DeError::custom("expected number for f32"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number for f64"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn to_value(&self) -> Value {
                    Value::Seq(vec![$(self.$n.to_value()),+])
                }
            }
            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let s = v.as_seq().ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                    let expect = [$($n),+].len();
                    if s.len() != expect {
                        return Err(DeError::custom("tuple length mismatch"));
                    }
                    Ok(($($t::from_value(&s[$n])?,)+))
                }
            }
        )+
    };
}

ser_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Seq(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let t: (u32, String) =
            Deserialize::from_value(&(3u32, "x".to_string()).to_value()).unwrap();
        assert_eq!(t, (3, "x".to_string()));
    }

    #[test]
    fn index_and_get() {
        let v = Value::object(vec![("a", Value::from(1u64)), ("b", Value::from("s"))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
    }
}
