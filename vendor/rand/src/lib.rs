//! Offline stand-in for `rand` 0.8: seeded deterministic generation only.
//!
//! `rngs::StdRng` is a splitmix64 generator — statistically fine for the
//! workload-input generation this workspace does, deterministic per seed,
//! and trivially portable. No OS entropy, no thread_rng.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling over a type's full range (the `Standard` distribution
/// of real rand, collapsed into a single trait).
pub trait Sample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform sampling within a half-open range.
pub trait SampleRange: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

pub trait Rng: RngCore {
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! sample_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Sample for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
            impl SampleRange for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                    assert!(range.start < range.end, "empty gen_range");
                    let span = range.end.wrapping_sub(range.start) as u64;
                    // Modulo bias is ≤ span/2^64 — irrelevant for the
                    // deterministic test-input generation this serves.
                    range.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*
    };
}

sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64: a tiny, high-quality 64-bit mixer.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }
}
