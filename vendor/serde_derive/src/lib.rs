//! Derive macros for the vendored `serde` stand-in.
//!
//! Written directly against `proc_macro` (no syn/quote — the build has no
//! registry access). Supports exactly the shapes this workspace derives:
//! non-generic named/tuple/unit structs and enums whose variants are
//! unit, newtype, tuple, or struct-like, externally tagged. `#[serde]`
//! attributes are not supported and will simply be ignored as ordinary
//! attributes are skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if matches!(tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i + 2) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                None => Shape::Unit,
                other => panic!("serde_derive stub: unexpected struct body {other:?}"),
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i + 2) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive stub: expected enum body, got {other:?}"),
            };
            Input::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

/// Parse `name: Type, ...` field lists, skipping attributes/visibility.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                assert!(
                    matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "serde_derive stub: expected `:` after field name"
                );
                i += 1;
                i = skip_type(&tokens, i);
            }
            other => panic!("serde_derive stub: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Advance past a type, stopping after the `,` that ends the field (or at
/// end of stream). Tracks `<...>` nesting; `(...)`/`[...]` are single
/// token trees so commas inside them are invisible here.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
            _ => {}
        }
        count += 1;
        i = skip_type(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Shape::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Shape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Shape::Unit,
                };
                // Skip an explicit discriminant (`= expr`) if present.
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    while i < tokens.len()
                        && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                    {
                        i += 1;
                    }
                }
                variants.push(Variant { name, shape });
            }
            other => panic!("serde_derive stub: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let mut out = String::new();
    match &input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_fields_to_map(fields, "self."),
            };
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            );
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\
                                 ::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::variant(\"{vn}\", \
                                 ::serde::Serialize::to_value(__f0)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => ::serde::variant(\"{vn}\", \
                                 ::serde::Value::Seq(::std::vec![{}])),",
                            binds.join(", "),
                            items.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let map = named_fields_to_map(fields, "");
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {binds} }} => ::serde::variant(\"{vn}\", {map}),"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            );
        }
    }
    out.parse().expect("serde_derive stub: generated invalid Serialize impl")
}

fn named_fields_to_map(fields: &[String], prefix: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let mut out = String::new();
    match &input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple(n) => tuple_from_seq(name, *n, "__v"),
                Shape::Named(fields) => named_from_map(name, fields, "__v"),
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
            );
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    Shape::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let body = tuple_from_seq(&format!("{name}::{vn}"), *n, "__payload");
                        let _ = write!(tagged_arms, "\"{vn}\" => {{ {body} }}");
                    }
                    Shape::Named(fields) => {
                        let body = named_from_map(&format!("{name}::{vn}"), fields, "__payload");
                        let _ = write!(tagged_arms, "\"{vn}\" => {{ {body} }}");
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\
                     if let ::std::option::Option::Some(__s) = __v.as_str() {{\
                         return match __s {{ {unit_arms} _ => \
                             ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{__s}}` of {name}\"))) }};\
                     }}\
                     let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                         \"expected string or single-key map for enum {name}\"))?;\
                     if __m.len() != 1 {{\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"expected single-key map for enum {name}\"));\
                     }}\
                     let (__tag, __payload) = (&__m[0].0, &__m[0].1);\
                     let _ = __payload;\
                     match __tag.as_str() {{ {tagged_arms} _ => \
                         ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{__tag}}` of {name}\"))) }}\
                 }} }}"
            );
        }
    }
    out.parse().expect("serde_derive stub: generated invalid Deserialize impl")
}

fn tuple_from_seq(ctor: &str, n: usize, src: &str) -> String {
    let items: Vec<String> =
        (0..n).map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?")).collect();
    format!(
        "{{ let __s = {src}.as_seq().ok_or_else(|| ::serde::DeError::custom(\
             \"expected sequence for {ctor}\"))?;\
         if __s.len() != {n} {{\
             return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"wrong arity for {ctor}\"));\
         }}\
         ::std::result::Result::Ok({ctor}({})) }}",
        items.join(", ")
    )
}

fn named_from_map(ctor: &str, fields: &[String], src: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     ::serde::map_get(__m, \"{f}\").unwrap_or(&::serde::NULL))?,"
            )
        })
        .collect();
    format!(
        "{{ let __m = {src}.as_map().ok_or_else(|| ::serde::DeError::custom(\
             \"expected map for {ctor}\"))?;\
         ::std::result::Result::Ok({ctor} {{ {} }}) }}",
        items.join(" ")
    )
}
