//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored serde
//! [`Value`] tree. Implements `to_string`, `to_string_pretty`,
//! `to_value`, `from_str`, and a complete (if unfancy) JSON parser.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` on f64 prints the shortest representation that
                // round-trips; integral values gain a `.0` which JSON
                // readers accept.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                // JSON has no NaN/Infinity; follow serde_json's lossy
                // `to_string` convention of emitting null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!("expected , or ] at byte {}", self.pos)))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected , or }} at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek()? != b'"' {
            return Err(Error::new(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if !float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_tree() {
        let v = Value::object(vec![
            ("name", Value::from("orion")),
            ("cycles", Value::from(12345u64)),
            ("ratio", Value::from(0.5f64)),
            ("tags", Value::Seq(vec![Value::from("a"), Value::Null])),
            ("nested", Value::object(vec![("neg", Value::I64(-3))])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        // I64(-3) parses back as I64; unsigned stays U64.
        assert_eq!(back["cycles"].as_u64(), Some(12345));
        assert_eq!(back["nested"]["neg"].as_i64(), Some(-3));
        assert_eq!(back["tags"].as_seq().unwrap().len(), 2);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back, back2);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quote\"\\tab\tünïcode";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
