//! Offline stand-in for `proptest`: deterministic seeded case generation
//! with the `Strategy`/`prop_map`/`prop_oneof!`/`proptest!` surface this
//! workspace uses. No shrinking — a failing case reports its `Debug`
//! rendering, and generation is deterministic per (test name, case
//! index), so failures reproduce exactly.

pub mod strategy;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is uniform in
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// splitmix64 seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

/// Failure raised by `prop_assert*!` inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}` (both {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(::std::stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let desc = ::std::format!("{:?}", ($(&$arg),+ ,));
                    #[allow(unused_mut)]
                    let mut run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = run() {
                        ::std::panic!(
                            "proptest case {case}/{} failed: {e}\ninputs: {desc}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![(0..10u32, 0..10u32).prop_map(|(a, b)| a + b), (0..5u32).prop_map(|x| x * 2),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn generated_values_in_bounds(
            v in crate::collection::vec(small(), 1..8),
            k in 3u64..9,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 19));
            prop_assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(small(), 1..20);
        let a = s.generate(&mut TestRng::for_case("x", 3));
        let b = s.generate(&mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
    }
}
