//! The `Strategy` trait and combinators: ranges, tuples, `prop_map`,
//! `Just`, and `Union` (the engine behind `prop_oneof!`).

use crate::test_runner::TestRng;
use std::ops::Range;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`). The real
/// proptest supports weights; this stand-in picks uniformly.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
}
