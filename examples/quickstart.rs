//! Five-minute tour: build a kernel, let Orion pick its occupancy, and
//! compare with the nvcc-like baseline on the simulated GTX680.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use orion::core::orion::Orion;
use orion::core::runtime::tune_loop;
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::exec::Launch;
use orion::kir::builder::FunctionBuilder;
use orion::kir::function::Module;
use orion::kir::inst::Operand;
use orion::kir::types::{MemSpace, SpecialReg, Width};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build a kernel in the IR ------------------------------------
    // A register-hungry streaming kernel: out[gid] = Σ_k ck * in[gid].
    let mut b = FunctionBuilder::kernel("weighted_sum");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let terms: Vec<_> = (1..=40)
        .map(|k| {
            let c = b.mov_f32(k as f32 * 0.25);
            b.fmul(x, c)
        })
        .collect();
    let mut acc = b.mov_f32(0.0);
    for t in terms {
        acc = b.fadd(acc, t);
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    let module = Module::new(b.finish());

    // --- 2. Compile with Orion (Figure 8) -------------------------------
    let dev = DeviceSpec::gtx680();
    let orion = Orion::new(dev.clone(), 256);
    let compiled = orion.compile(&module)?;
    println!("max-live           : {} words", compiled.max_live);
    println!("tuning direction   : {:?}", compiled.direction);
    println!("candidate versions : {}", compiled.num_candidates());
    for v in &compiled.versions {
        println!(
            "  {:<16} occ {:>5.2}  regs {:>2}  smem-slots {:>2}",
            v.label, v.occupancy, v.machine.regs_per_thread, v.machine.smem_slots_per_thread,
        );
    }

    // --- 3. Tune at runtime (Figure 9) ----------------------------------
    let n: u32 = 64 * 256;
    let launch = Launch { grid: 64, block: 256 };
    let mut global = vec![0u8; (8 * n) as usize];
    let outcome = tune_loop(&compiled, 8, 0.02, |v| {
        orion.run_version(v, launch, &[0, 4 * n], &mut global).map(|r| r.cycles)
    })?;
    let sel = &compiled.versions[outcome.selected];
    println!(
        "\nselected after {} trials: {} (occupancy {:.2})",
        outcome.converged_after, sel.label, sel.occupancy
    );

    // --- 4. Compare with the nvcc-like baseline -------------------------
    let baseline = orion.baseline(&module)?;
    let mut g1 = vec![0u8; (8 * n) as usize];
    let sel_cycles = orion.run_version(sel, launch, &[0, 4 * n], &mut g1)?.cycles;
    let mut g2 = vec![0u8; (8 * n) as usize];
    let nvcc_cycles = orion.run_version(&baseline, launch, &[0, 4 * n], &mut g2)?.cycles;
    assert_eq!(g1, g2, "same results regardless of occupancy");
    println!(
        "orion {} cycles vs nvcc {} cycles -> speedup {:.2}x",
        sel_cycles,
        nvcc_cycles,
        nvcc_cycles as f64 / sel_cycles as f64
    );
    Ok(())
}
