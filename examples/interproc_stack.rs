//! Inspect the compressible stack (§3.2): how inter-procedural
//! allocation lays out frames, and what the Figure 5 ablations
//! (no space minimization / no data-movement minimization) cost.
//!
//! ```sh
//! cargo run --release --example interproc_stack -- cfd
//! ```

use orion::alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::sim::{run_launch_opts, LaunchOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("cfd");
    let w = orion::workloads::by_name(name).ok_or("unknown workload")?;
    let dev = DeviceSpec::c2075();
    println!("{}: {} static call sites", w.name, w.module.static_call_count());

    let budget = SlotBudget { reg_slots: 32, smem_slots: 16 };
    let configs = [
        (
            "full (space + movement min)",
            AllocOptions { compress_stack: true, optimize_layout: true },
        ),
        ("no movement minimization", AllocOptions { compress_stack: true, optimize_layout: false }),
        ("no space minimization", AllocOptions { compress_stack: false, optimize_layout: false }),
    ];
    println!(
        "\n{:<30} {:>6} {:>6} {:>7} {:>12}",
        "configuration", "regs", "local", "moves", "cycles"
    );
    for (label, opts) in configs {
        let alloc = allocate(&w.module, budget, &opts)?;
        // Frame layout of each function.
        if opts.compress_stack && opts.optimize_layout {
            for f in &alloc.report.per_func {
                println!(
                    "  frame {:<24} base {:>3}  size {:>3}  spilled {:>2}  predicted moves {}",
                    f.name, f.base, f.frame_size, f.spilled_webs, f.predicted_moves
                );
            }
        }
        let mut global = w.init_global.clone();
        let r = run_launch_opts(
            &dev,
            &alloc.machine,
            w.launch(),
            &w.params,
            &mut global,
            LaunchOptions::default(),
        )?;
        println!(
            "{:<30} {:>6} {:>6} {:>7} {:>12}",
            label,
            alloc.machine.regs_per_thread,
            alloc.machine.local_slots_per_thread,
            alloc.machine.static_stack_moves,
            r.cycles
        );
    }
    Ok(())
}
