//! Watch the Figure 9 dynamic tuner at work: iteration-by-iteration
//! version selection on a real benchmark's application loop.
//!
//! ```sh
//! cargo run --release --example runtime_adaptation -- srad
//! ```

use orion::core::orion::Orion;
use orion::core::runtime::DynamicTuner;
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::sim::{run_launch_opts, LaunchOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("srad");
    let w = orion::workloads::by_name(name).ok_or("unknown workload")?;
    let dev = match std::env::args().nth(2).as_deref() {
        Some("gtx680") => DeviceSpec::gtx680(),
        _ => DeviceSpec::c2075(),
    };
    let mut orion = Orion::new(dev.clone(), w.block);
    orion.cfg.can_tune = w.can_tune;

    let compiled = orion.compile(&w.module)?;
    println!(
        "{}: direction {:?}, {} candidates, max-live {}",
        w.name,
        compiled.direction,
        compiled.num_candidates(),
        compiled.max_live
    );

    let mut tuner = DynamicTuner::new(&compiled, 0.02);
    let mut global = w.init_global.clone();
    for iter in 0..w.iterations {
        let vidx = tuner.select();
        let v = &compiled.versions[vidx];
        let r = run_launch_opts(
            &dev,
            &v.machine,
            w.launch(),
            w.params_for(iter),
            &mut global,
            LaunchOptions { extra_smem_per_block: v.extra_smem, ..Default::default() },
        )?;
        let status = match tuner.finalized() {
            Some(_) => "steady",
            None => "tuning",
        };
        println!(
            "iter {:>2}: ran {:<14} (occ {:>5.2})  {:>9} cycles  [{status}]",
            iter, v.label, v.occupancy, r.cycles
        );
        tuner.record(r.cycles);
    }
    let sel = &compiled.versions[tuner.finalized().unwrap_or(tuner.select())];
    println!(
        "\nfinal: {} at occupancy {:.2} using {} regs/thread ({} trials)",
        sel.label,
        sel.occupancy,
        sel.machine.regs_per_thread,
        tuner.trials()
    );
    Ok(())
}
