//! Reproduce a Figure 1-style occupancy curve for any bundled benchmark.
//!
//! ```sh
//! cargo run --release --example occupancy_sweep -- imageDenoising gtx680
//! cargo run --release --example occupancy_sweep -- srad c2075
//! ```

use orion::core::orion::Orion;
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::sim::{run_launch_opts, LaunchOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("imageDenoising");
    let dev = match args.get(2).map(String::as_str) {
        Some("c2075") => DeviceSpec::c2075(),
        _ => DeviceSpec::gtx680(),
    };
    let w = orion::workloads::by_name(name).ok_or_else(|| {
        format!(
            "unknown workload {name}; try one of {:?}",
            orion::workloads::all_workloads().iter().map(|w| w.name).collect::<Vec<_>>()
        )
    })?;

    println!("{} ({}) on {}", w.name, w.domain, dev.name);
    println!(
        "{:>9} {:>6} {:>5} {:>6} {:>11} {:>8}",
        "occupancy", "warps", "regs", "smem", "cycles", "norm"
    );

    let orion = Orion::new(dev.clone(), w.block);
    let versions = orion.sweep(&w.module)?;
    let mut results = Vec::new();
    for v in &versions {
        let mut global = w.init_global.clone();
        let r = run_launch_opts(
            &dev,
            &v.machine,
            w.launch(),
            &w.params,
            &mut global,
            LaunchOptions { extra_smem_per_block: v.extra_smem, ..Default::default() },
        );
        if let Ok(r) = r {
            results.push((v, r.cycles));
        }
    }
    let best = results.iter().map(|&(_, c)| c).min().unwrap_or(1);
    for (v, cycles) in &results {
        println!(
            "{:>9.3} {:>6} {:>5} {:>6} {:>11} {:>8.3}  {}",
            v.occupancy,
            v.achieved_warps,
            v.machine.regs_per_thread,
            v.machine.smem_slots_per_thread,
            cycles,
            *cycles as f64 / best as f64,
            "#".repeat(((*cycles as f64 / best as f64) * 12.0) as usize),
        );
    }
    Ok(())
}
