//! # orion — GPU occupancy tuning on a simulated device
//!
//! Facade crate for the reproduction of *Orion: A Framework for GPU
//! Occupancy Tuning* (Hayes, Li, Chavarría, Song, Zhang — Middleware
//! 2016). It re-exports the workspace crates:
//!
//! * [`kir`] — the SASS-like kernel IR, analyses, and the reference
//!   interpreter;
//! * [`alloc`] — on-chip memory allocation: Figure 4 coloring, the
//!   compressible stack, and Kuhn-Munkres layout optimization;
//! * [`gpusim`] — the event-driven GPU simulator (GTX680 and Tesla
//!   C2075 device models, occupancy calculator, power model);
//! * [`core`] — the Orion framework: compile-time tuning (Figure 8) and
//!   runtime adaptation (Figure 9);
//! * [`workloads`] — the paper's twelve benchmarks plus `matrixMul`,
//!   rebuilt with their Table 2 characteristics;
//! * [`telemetry`] — structured-event tracing: allocator counters, tuner
//!   decision logs, stall-attributed simulator timelines, and exporters
//!   to Chrome `trace_event` JSON and flat metrics reports.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology and results.

pub use orion_alloc as alloc;
pub use orion_core as core;
pub use orion_gpusim as gpusim;
pub use orion_kir as kir;
pub use orion_telemetry as telemetry;
pub use orion_workloads as workloads;
