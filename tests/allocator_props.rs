//! Property-based tests over randomly generated kernels: for *any*
//! straight-line/looping program and *any* slot budget, allocation must
//! preserve semantics and respect structural invariants.

use orion::alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::exec::Launch;
use orion::gpusim::sim::run_launch;
use orion::kir::builder::{build_fdiv_device, FunctionBuilder};
use orion::kir::function::Module;
use orion::kir::inst::Operand;
use orion::kir::interp::{Interpreter, LaunchConfig};
use orion::kir::types::{MemSpace, SpecialReg, VReg, Width};
use proptest::prelude::*;

/// A recipe for one random straight-line op.
#[derive(Debug, Clone)]
enum Op {
    Add(usize, usize),
    Mul(usize, usize),
    Fma(usize, usize, usize),
    Min(usize, usize),
    Shl(usize, u8),
    Load(usize),
    CallDiv(usize, usize),
    Wide(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::Add(a, b)),
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::Mul(a, b)),
        (0..64usize, 0..64usize, 0..64usize).prop_map(|(a, b, c)| Op::Fma(a, b, c)),
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::Min(a, b)),
        (0..64usize, 0..8u8).prop_map(|(a, s)| Op::Shl(a, s)),
        (0..64usize).prop_map(Op::Load),
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::CallDiv(a, b)),
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::Wide(a, b)),
    ]
}

/// Build a module from a recipe: values form a growing pool; every op
/// reads pool entries (mod length) and appends its result.
fn build_module(ops: &[Op]) -> Module {
    let kb = FunctionBuilder::kernel("prop");
    let mut m = Module::new(kb.finish());
    let fdiv = m.add_func(build_fdiv_device());
    let mut b = FunctionBuilder::kernel("prop");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x0 = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let mut pool: Vec<VReg> = vec![x0, gid, tid];
    for op in ops {
        let pick = |i: &usize| pool[i % pool.len()];
        let v = match op {
            Op::Add(a, b2) => b.iadd(pick(a), pick(b2)),
            Op::Mul(a, b2) => b.imul(pick(a), pick(b2)),
            Op::Fma(a, b2, c) => b.imad(pick(a), pick(b2), pick(c)),
            Op::Min(a, b2) => b.imin(pick(a), pick(b2)),
            Op::Shl(a, s) => b.shl(pick(a), Operand::Imm(i64::from(*s))),
            Op::Load(a) => {
                let idx = {
                    let masked = b.and(pick(a), Operand::Imm(63));
                    b.imad(masked, Operand::Imm(4), Operand::Param(0))
                };
                b.ld(MemSpace::Global, Width::W32, idx, 0)
            }
            Op::CallDiv(a, b2) => {
                // Guard the denominator away from zero: d = (x | 3).
                let num = pick(a);
                let den = b.or(pick(b2), Operand::Imm(3));
                let fnum = b.i2f(num);
                let fden = b.i2f(den);
                let q = b.call(fdiv, vec![fnum.into(), fden.into()], &[Width::W32])[0];
                b.f2i(q)
            }
            Op::Wide(a, b2) => {
                // Build a W64 pair, consume it, keep the low word.
                let wide = b.vreg(Width::W64);
                b.push(orion::kir::inst::Inst::new(
                    orion::kir::inst::Opcode::Mov,
                    Some(wide),
                    vec![Operand::Imm(0)],
                ));
                let w1 = b.pack(wide, pick(a), 0);
                let w2 = b.pack(w1, pick(b2), 1);
                b.unpack(w2, 1)
            }
        };
        pool.push(v);
    }
    // Fold the pool tail so late values are live together.
    let mut acc = b.mov_i32(0);
    let tail: Vec<VReg> = pool.iter().rev().take(12).copied().collect();
    for v in tail {
        acc = b.iadd(acc, v);
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    m.funcs[0] = b.finish();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allocation_preserves_semantics(
        ops in proptest::collection::vec(op_strategy(), 4..40),
        reg_budget in 2u16..24,
        smem_budget in 0u16..8,
    ) {
        let m = build_module(&ops);
        orion::kir::verify::verify(&m).expect("generated module verifies");
        let n = 64u32;
        let mut init = Vec::new();
        for i in 0..2 * n {
            init.extend((i.wrapping_mul(2654435761u32) % 97).to_le_bytes());
        }
        let mut ref_global = init.clone();
        Interpreter::new(&m, &[0, 4 * n])
            .run(LaunchConfig { grid: 2, block: 32 }, &mut ref_global)
            .expect("reference run");

        let alloc = allocate(
            &m,
            SlotBudget { reg_slots: reg_budget, smem_slots: smem_budget },
            &AllocOptions::default(),
        )
        .expect("allocation");
        let mut global = init.clone();
        run_launch(
            &DeviceSpec::c2075(),
            &alloc.machine,
            Launch { grid: 2, block: 32 },
            &[0, 4 * n],
            &mut global,
        )
        .expect("simulated run");
        prop_assert_eq!(global, ref_global);
    }

    #[test]
    fn occupancy_monotone_in_padding(pad in 0u32..40960) {
        use orion::gpusim::occupancy::{occupancy, KernelResources};
        let dev = DeviceSpec::c2075();
        let base = occupancy(&dev, &KernelResources {
            regs_per_thread: 16, smem_per_block: pad, block_size: 192,
        });
        let more = occupancy(&dev, &KernelResources {
            regs_per_thread: 16, smem_per_block: pad + 1024, block_size: 192,
        });
        prop_assert!(more.active_warps <= base.active_warps);
    }

    #[test]
    fn simulator_is_deterministic(
        ops in proptest::collection::vec(op_strategy(), 4..16),
    ) {
        let m = build_module(&ops);
        let alloc = allocate(
            &m,
            SlotBudget { reg_slots: 12, smem_slots: 2 },
            &AllocOptions::default(),
        ).expect("allocation");
        let n = 64u32;
        let init = vec![1u8; (8 * n) as usize];
        let run = || {
            let mut g = init.clone();
            let r = run_launch(
                &DeviceSpec::gtx680(),
                &alloc.machine,
                Launch { grid: 2, block: 32 },
                &[0, 4 * n],
                &mut g,
            ).expect("run");
            (r.cycles, g)
        };
        let (c1, g1) = run();
        let (c2, g2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(g1, g2);
    }
}
