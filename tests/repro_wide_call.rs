//! Regression test for a proptest-found miscompile: a wide (W64) value
//! combined with a division call under a tiny slot budget.

use orion::alloc::realize::{allocate, AllocOptions, SlotBudget};
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::exec::Launch;
use orion::gpusim::sim::run_launch;
use orion::kir::builder::{build_fdiv_device, FunctionBuilder};
use orion::kir::function::Module;
use orion::kir::inst::Operand;
use orion::kir::interp::{Interpreter, LaunchConfig};
use orion::kir::types::{MemSpace, SpecialReg, VReg, Width};

fn build() -> Module {
    let kb = FunctionBuilder::kernel("repro");
    let mut m = Module::new(kb.finish());
    let fdiv = m.add_func(build_fdiv_device());
    let mut b = FunctionBuilder::kernel("repro");
    let tid = b.mov(Operand::Special(SpecialReg::TidX));
    let cta = b.mov(Operand::Special(SpecialReg::CtaIdX));
    let nt = b.mov(Operand::Special(SpecialReg::NTidX));
    let gid = b.imad(cta, nt, tid);
    let addr = b.imad(gid, Operand::Imm(4), Operand::Param(0));
    let x0 = b.ld(MemSpace::Global, Width::W32, addr, 0);
    let mut pool: Vec<VReg> = vec![x0, gid, tid];
    // Add(0,0); Add(0,3)
    let v = b.iadd(pool[0], pool[0]);
    pool.push(v);
    let v = b.iadd(pool[0], pool[3 % pool.len()]);
    pool.push(v);
    // Wide(13,9)
    let wide = b.vreg(Width::W64);
    b.push(orion::kir::inst::Inst::new(
        orion::kir::inst::Opcode::Mov,
        Some(wide),
        vec![Operand::Imm(0)],
    ));
    let a = pool[13 % pool.len()];
    let c = pool[9 % pool.len()];
    let w1 = b.pack(wide, a, 0);
    let w2 = b.pack(w1, c, 1);
    let v = b.unpack(w2, 1);
    pool.push(v);
    // CallDiv(32,25)
    let num = pool[32 % pool.len()];
    let den = b.or(pool[25 % pool.len()], Operand::Imm(3));
    let fnum = b.i2f(num);
    let fden = b.i2f(den);
    let q = b.call(fdiv, vec![fnum.into(), fden.into()], &[Width::W32])[0];
    let v = b.f2i(q);
    pool.push(v);
    // fold last 12
    let mut acc = b.mov_i32(0);
    let tail: Vec<VReg> = pool.iter().rev().take(12).copied().collect();
    for t in tail {
        acc = b.iadd(acc, t);
    }
    let out = b.imad(gid, Operand::Imm(4), Operand::Param(1));
    b.st(MemSpace::Global, Width::W32, out, acc, 0);
    m.funcs[0] = b.finish();
    m
}

#[test]
fn wide_plus_call_tiny_budget() {
    let m = build();
    orion::kir::verify::verify(&m).unwrap();
    let n = 64u32;
    let mut init = Vec::new();
    for i in 0..2 * n {
        init.extend((i.wrapping_mul(2654435761u32) % 97).to_le_bytes());
    }
    let mut ref_global = init.clone();
    Interpreter::new(&m, &[0, 4 * n])
        .run(LaunchConfig { grid: 2, block: 32 }, &mut ref_global)
        .unwrap();
    for (regs, smem) in [(3u16, 4u16), (2, 0), (4, 4), (63, 0)] {
        let alloc = allocate(
            &m,
            SlotBudget { reg_slots: regs, smem_slots: smem },
            &AllocOptions::default(),
        )
        .unwrap();
        let mut global = init.clone();
        run_launch(
            &DeviceSpec::c2075(),
            &alloc.machine,
            Launch { grid: 2, block: 32 },
            &[0, 4 * n],
            &mut global,
        )
        .unwrap();
        assert_eq!(global, ref_global, "budget ({regs},{smem})");
    }
}
