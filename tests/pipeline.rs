//! Cross-crate integration tests: the full Orion pipeline over the real
//! benchmark suite (scaled-down launches so debug builds stay fast).

use orion::core::compiler::Direction;
use orion::core::orion::Orion;
use orion::gpusim::device::DeviceSpec;
use orion::gpusim::exec::Launch;
use orion::gpusim::sim::{run_launch_opts, LaunchOptions};
use orion::kir::interp::{Interpreter, LaunchConfig};
use orion::workloads::{all_workloads, by_name, downward_benchmarks, upward_benchmarks};

/// A scaled-down launch: a prefix of the grid (buffers stay valid).
fn small_launch(w: &orion::workloads::Workload) -> Launch {
    Launch { grid: w.grid.min(4), block: w.block }
}

#[test]
fn compiler_emits_at_most_five_candidates_everywhere() {
    for dev in [DeviceSpec::c2075(), DeviceSpec::gtx680()] {
        for w in all_workloads() {
            let mut orion = Orion::new(dev.clone(), w.block);
            orion.cfg.can_tune = w.can_tune;
            let ck = orion.compile(&w.module).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                ck.num_candidates() <= 5,
                "{} on {}: {} candidates",
                w.name,
                dev.name,
                ck.num_candidates()
            );
            assert!(!ck.versions.is_empty());
        }
    }
}

#[test]
fn tuning_directions_match_table2() {
    let dev = DeviceSpec::c2075();
    for w in upward_benchmarks() {
        let mut orion = Orion::new(dev.clone(), w.block);
        orion.cfg.can_tune = w.can_tune;
        let ck = orion.compile(&w.module).unwrap();
        assert_eq!(
            ck.direction,
            Direction::Increasing,
            "{} should tune upward (max-live {})",
            w.name,
            ck.max_live
        );
        assert!(ck.max_live >= 32);
    }
    for w in downward_benchmarks() {
        let mut orion = Orion::new(dev.clone(), w.block);
        orion.cfg.can_tune = w.can_tune;
        let ck = orion.compile(&w.module).unwrap();
        assert_eq!(
            ck.direction,
            Direction::Decreasing,
            "{} should tune downward (max-live {})",
            w.name,
            ck.max_live
        );
        assert!(ck.max_live < 32);
    }
}

#[test]
fn every_workload_runs_correctly_at_every_candidate() {
    // Semantic preservation on the real benchmarks: all candidate
    // binaries must produce the reference interpreter's global memory.
    let dev = DeviceSpec::c2075();
    for w in all_workloads() {
        let launch = small_launch(&w);
        let mut ref_global = w.init_global.clone();
        Interpreter::new(&w.module, &w.params)
            .run(LaunchConfig { grid: launch.grid, block: launch.block }, &mut ref_global)
            .unwrap_or_else(|e| panic!("{}: reference run {e}", w.name));

        let mut orion = Orion::new(dev.clone(), w.block);
        orion.cfg.can_tune = w.can_tune;
        let ck = orion.compile(&w.module).unwrap();
        for v in &ck.versions {
            let mut global = w.init_global.clone();
            run_launch_opts(
                &dev,
                &v.machine,
                launch,
                &w.params,
                &mut global,
                LaunchOptions { extra_smem_per_block: v.extra_smem, ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("{} version {}: {e}", w.name, v.label));
            assert_eq!(
                global, ref_global,
                "{} version {} diverged from the reference",
                w.name, v.label
            );
        }
    }
}

#[test]
fn baseline_matches_semantics_too() {
    let dev = DeviceSpec::gtx680();
    for name in ["srad", "cfd", "matrixMul"] {
        let w = by_name(name).unwrap();
        let launch = small_launch(&w);
        let mut ref_global = w.init_global.clone();
        Interpreter::new(&w.module, &w.params)
            .run(LaunchConfig { grid: launch.grid, block: launch.block }, &mut ref_global)
            .unwrap();
        let orion = Orion::new(dev.clone(), w.block);
        let base = orion.baseline(&w.module).unwrap();
        let mut global = w.init_global.clone();
        run_launch_opts(
            &dev,
            &base.machine,
            launch,
            &w.params,
            &mut global,
            LaunchOptions::default(),
        )
        .unwrap();
        assert_eq!(global, ref_global, "{name}");
    }
}

#[test]
fn kernel_splitting_covers_grid_exactly() {
    use orion::core::splitting::{piece_options, split_ranges};
    let w = by_name("particles").unwrap();
    let dev = DeviceSpec::c2075();
    let orion = Orion::new(dev.clone(), w.block);
    let base = orion.baseline(&w.module).unwrap();
    let launch = Launch { grid: 8, block: w.block };

    // Whole launch.
    let mut whole = w.init_global.clone();
    run_launch_opts(&dev, &base.machine, launch, &w.params, &mut whole, LaunchOptions::default())
        .unwrap();
    // Split into 4 pieces.
    let mut split = w.init_global.clone();
    for range in split_ranges(launch.grid, 4, 1) {
        run_launch_opts(
            &dev,
            &base.machine,
            launch,
            &w.params,
            &mut split,
            piece_options(range, 0),
        )
        .unwrap();
    }
    assert_eq!(whole, split, "split launches must compute the same result");
}

#[test]
fn downward_selection_saves_registers_or_keeps_speed() {
    // End-to-end: for srad the tuner must settle on something that does
    // not lose more than the threshold versus the original.
    let dev = DeviceSpec::c2075();
    let w = by_name("srad").unwrap();
    let launch = small_launch(&w);
    let mut orion = Orion::new(dev.clone(), w.block);
    orion.cfg.can_tune = true;
    let ck = orion.compile(&w.module).unwrap();
    let mut global = w.init_global.clone();
    let outcome = orion::core::runtime::tune_loop(&ck, w.iterations, 0.02, |v| {
        run_launch_opts(
            &dev,
            &v.machine,
            launch,
            &w.params,
            &mut global,
            LaunchOptions { extra_smem_per_block: v.extra_smem, ..Default::default() },
        )
        .map(|r| r.cycles)
    })
    .unwrap();
    let sel = &ck.versions[outcome.selected];
    let orig = &ck.versions[ck.original];
    assert!(sel.achieved_warps <= orig.achieved_warps);
    assert!(outcome.converged_after <= ck.num_candidates() + 1);
}
